"""Bottom-up evaluation of the SPARQL algebra against a triple store.

Two join strategies for basic graph patterns are provided, mirroring the two
engine families the paper benchmarks:

``nested_loop``
    Index nested-loop join: patterns are evaluated left to right and, for
    every intermediate solution, the already-bound components are substituted
    into the next pattern before asking the store.  With an
    :class:`~repro.store.IndexedStore` backend each such probe is an index
    lookup, which is what gives native engines (Sesame-native, Virtuoso)
    near-constant time on selective queries such as Q1, Q3c, Q10, and Q12c.

``scan_hash``
    Scan-and-hash join: each pattern is matched once against the whole store
    (a linear scan on a :class:`~repro.store.MemoryStore`) and the resulting
    binding sets are hash-joined.  Every query therefore costs at least one
    full pass over the document — the "in-memory engines must always load and
    scan the document" behaviour discussed for ARQ and Sesame-memory.

Orthogonal to the strategy, the evaluator picks one of two *solution
representations* based on the store's capabilities (see DESIGN.md):

* Stores advertising ``supports_id_access`` (the indexed "native engine"
  model) are evaluated **in id space**: joins compare dictionary-encoded
  integers in flat slot-addressed tuples and RDF terms are only materialized
  at the result boundary.  The machinery lives in :mod:`.idspace`; this
  module is its term-level twin and the facade (:class:`Evaluator`) that
  dispatches between the two.
* Scan-based stores keep the historical **term-space** path below, where
  solutions are dict-backed :class:`~repro.sparql.bindings.Binding` objects —
  deliberately so, because paying term-object costs per probe is part of the
  in-memory-engine cost model the benchmark contrasts against.

OPTIONAL is evaluated as a hash-based left outer join on both paths; the
quadratic pairwise formulation survives only as a reference in the test
suite.
"""

from __future__ import annotations

from itertools import islice

from ..rdf.terms import Variable, term_sort_key
from . import algebra
from .bindings import EMPTY_BINDING, Binding
from .errors import EvaluationError
from .expressions import effective_boolean_value
from .idspace import NESTED_LOOP, SCAN_HASH, IdSpaceEvaluation, reduce_numbers
from .planner import BIND_JOIN
from .scatter import ScatterGatherEvaluation

_STRATEGIES = (NESTED_LOOP, SCAN_HASH)


class Evaluator:
    """Evaluates algebra trees over a :class:`~repro.store.TripleStore`.

    ``reuse_patterns`` enables the third optimization the paper calls out
    (Table II row 5): when the same triple pattern shape occurs several times
    in a query (Q4 scans the article/creator/name patterns twice, Q6/Q7/Q8
    repeat whole blocks), its scan result is computed once and reused.  The
    cache lives for a single evaluation, keyed by the pattern's bound
    components, and is only consulted for scans whose bound components come
    from the query itself (not from intermediate bindings).
    """

    def __init__(self, store, strategy=NESTED_LOOP, reuse_patterns=False,
                 use_id_space=None, observe_plans=False, deadline=None,
                 seed=None):
        if strategy not in _STRATEGIES:
            raise EvaluationError(f"unknown join strategy {strategy!r}")
        supports_ids = getattr(store, "supports_id_access", False)
        if use_id_space is None:
            use_id_space = supports_ids
        elif use_id_space and not supports_ids:
            raise EvaluationError(
                f"store {store!r} does not support id-space evaluation"
            )
        self._store = store
        self._strategy = strategy
        self._reuse_patterns = reuse_patterns
        self._use_id_space = bool(use_id_space)
        self._observe_plans = observe_plans
        self._pattern_cache = {}
        #: Cooperative evaluation budget: the hot loops call ``_check()``
        #: so an expired :class:`~repro.sparql.cursor.Deadline` raises
        #: :class:`~repro.sparql.errors.QueryTimeout` mid-evaluation.
        self._deadline = deadline
        self._check = None if deadline is None else deadline.check
        #: Prepared-query parameter pre-binding: every BGP starts from this
        #: solution instead of the empty mapping, so probes use the bound
        #: terms and results carry them.
        if seed is None:
            self._seed_binding = EMPTY_BINDING
        elif isinstance(seed, Binding):
            self._seed_binding = seed
        else:
            self._seed_binding = Binding(seed)
        self._seed_map = dict(self._seed_binding.items())

    # -- public API -----------------------------------------------------------

    @property
    def uses_id_space(self):
        """True when this evaluator joins over dictionary ids."""
        return self._use_id_space

    def evaluate(self, node):
        """Evaluate an algebra tree.

        Returns an iterator of :class:`Binding` for SELECT-shaped trees and a
        bool for :class:`~repro.sparql.algebra.Ask` roots.  On id-capable
        stores the whole tree runs in id space and Bindings are materialized
        only here, at the result boundary.
        """
        if self._use_id_space:
            run = self._id_space_run()
            if isinstance(node, algebra.Ask):
                return run.ask(node.operand)
            return run.bindings(node)
        if isinstance(node, algebra.Ask):
            for _solution in self._eval(node.operand):
                return True
            return False
        return self._eval(node)

    def evaluate_ids(self, node):
        """Evaluate a SELECT-shaped tree into raw id rows (no decoding).

        Returns ``(layout, row_iterator)``; rows are flat tuples whose cells
        are dictionary ids (or None for unbound slots).  Exposed for
        benchmarks and the decode-counter tests; requires an id-capable store.
        """
        if not self._use_id_space:
            raise EvaluationError("evaluate_ids() requires an id-capable store")
        return self._id_space_run().solve(node)

    def _id_space_run(self):
        """A fresh per-evaluation id-space run (own caches and decode memo).

        Partitioned stores (anything exposing a ``segments`` attribute) get
        the scatter-gather evaluation; with one segment it degenerates to
        plain single-store behaviour, so the dispatch is purely structural.
        """
        cls = IdSpaceEvaluation
        if getattr(self._store, "segments", None) is not None:
            cls = ScatterGatherEvaluation
        return cls(
            self._store, self._strategy, reuse_patterns=self._reuse_patterns,
            observe_plans=self._observe_plans, deadline=self._deadline,
            seed=self._seed_map,
        )

    # -- dispatch ----------------------------------------------------------------

    def _eval(self, node):
        if isinstance(node, algebra.BGP):
            return self._eval_bgp(node)
        if isinstance(node, algebra.Join):
            return self._eval_join(node)
        if isinstance(node, algebra.LeftJoin):
            return self._eval_left_join(node)
        if isinstance(node, algebra.Union):
            return self._eval_union(node)
        if isinstance(node, algebra.Filter):
            return self._eval_filter(node)
        if isinstance(node, algebra.Project):
            return self._eval_project(node)
        if isinstance(node, algebra.Distinct):
            return self._eval_distinct(node)
        if isinstance(node, algebra.OrderBy):
            return self._eval_order_by(node)
        if isinstance(node, algebra.Slice):
            return self._eval_slice(node)
        if isinstance(node, algebra.Group):
            return self._eval_group(node)
        raise EvaluationError(f"cannot evaluate algebra node {node!r}")

    # -- basic graph patterns ------------------------------------------------------

    def _eval_bgp(self, node):
        if not node.patterns:
            return iter((self._seed_binding,))
        if self._strategy == NESTED_LOOP:
            return self._bgp_nested_loop(node)
        return self._bgp_scan_hash(node)

    def _bgp_nested_loop(self, node):
        solutions = iter((self._seed_binding,))
        for position, pattern in enumerate(node.patterns):
            solutions = self._extend_by_pattern(solutions, pattern)
            for expression in node.filters_at(position):
                solutions = self._apply_inline_filter(solutions, expression)
        return solutions

    def _apply_inline_filter(self, solutions, expression):
        check = self._check
        for binding in solutions:
            if check is not None:
                check()
            if effective_boolean_value(expression, binding):
                yield binding

    def _extend_by_pattern(self, solutions, pattern):
        for binding in solutions:
            yield from self._match_pattern(pattern, binding)

    def _match_pattern(self, pattern, binding):
        lookup = []
        for term in pattern:
            if isinstance(term, Variable):
                lookup.append(binding.get(term))
            else:
                lookup.append(term)
        check = self._check
        for triple in self._store.triples(*lookup):
            if check is not None:
                check()
            extended = _bind_triple(pattern, triple, binding)
            if extended is not None:
                yield extended

    def _bgp_scan_hash(self, node):
        check = self._check
        solutions = [self._seed_binding]
        for position, pattern in enumerate(node.patterns):
            pattern_bindings = []
            for triple in self._scan_pattern(pattern):
                if check is not None:
                    check()
                extended = _bind_triple(pattern, triple, EMPTY_BINDING)
                if extended is not None:
                    pattern_bindings.append(extended)
            solutions = _hash_join(solutions, pattern_bindings)
            for expression in node.filters_at(position):
                solutions = [
                    binding
                    for binding in solutions
                    if effective_boolean_value(expression, binding)
                ]
            if not solutions:
                break
        return iter(solutions)

    def _scan_pattern(self, pattern):
        """Match one triple pattern against the whole store.

        With pattern reuse enabled, the (ground-component) lookup is answered
        from the per-evaluation cache when the same pattern shape was scanned
        before.
        """
        lookup = tuple(
            term if not isinstance(term, Variable) else None for term in pattern
        )
        if not self._reuse_patterns:
            return self._store.triples(*lookup)
        cached = self._pattern_cache.get(lookup)
        if cached is None:
            cached = list(self._store.triples(*lookup))
            self._pattern_cache[lookup] = cached
        return cached

    # -- binary operators ------------------------------------------------------------

    def _eval_join(self, node):
        left = list(self._eval(node.left))
        if not left:
            return iter(())
        plan = getattr(node, "plan", None)
        if plan is not None and plan.strategy == BIND_JOIN:
            # A bind-join plan reordered the right side (and placed its
            # inline filters) under the assumption that the left rows seed
            # its evaluation; executing it standalone would let a filter run
            # before its variables are bound.  Honour the plan.
            return self._eval_seeded(node.right, left)
        right = list(self._eval(node.right))
        return iter(_hash_join(left, right))

    def _eval_seeded(self, node, bindings):
        """Evaluate ``node`` continuing from existing solutions (bind join).

        The term-space counterpart of the id-space evaluator's seeded
        execution: supported for the operators the planner marks seedable
        (BGP, Union, Filter); anything else falls back to standalone
        evaluation followed by a hash join.
        """
        if isinstance(node, algebra.BGP):
            return self._bgp_seeded(node, bindings)
        if isinstance(node, algebra.Union):
            def generate():
                yield from self._eval_seeded(node.left, list(bindings))
                yield from self._eval_seeded(node.right, list(bindings))

            bindings = list(bindings)
            return generate()
        if isinstance(node, algebra.Filter):
            expression = node.expression
            return (
                binding
                for binding in self._eval_seeded(node.operand, bindings)
                if effective_boolean_value(expression, binding)
            )
        right = list(self._eval(node))
        return iter(_hash_join(list(bindings), right))

    def _bgp_seeded(self, node, bindings):
        """Extend seed solutions through a BGP's patterns (probe per row)."""
        if not node.patterns:
            return iter(bindings)
        solutions = iter(bindings)
        for position, pattern in enumerate(node.patterns):
            solutions = self._extend_by_pattern(solutions, pattern)
            for expression in node.filters_at(position):
                solutions = self._apply_inline_filter(solutions, expression)
        return solutions

    def _eval_left_join(self, node):
        """Hash-based left outer join (OPTIONAL).

        Right solutions binding every shared variable are bucketed by their
        join key, so each left solution meets only its hash bucket (plus the
        unkeyed rows produced by nested OPTIONALs) instead of the whole right
        side; left solutions with no surviving match pass through unchanged.
        """
        left = list(self._eval(node.left))
        if not left:
            return iter(())
        right = list(self._eval(node.right))
        condition = node.condition
        shared = _shared_variables(left, right)
        keyed = {}
        unkeyed = []
        for right_binding in right:
            key = _join_key(right_binding, shared)
            if key is None:
                unkeyed.append(right_binding)
            else:
                keyed.setdefault(key, []).append(right_binding)
        check = self._check
        results = []
        for left_binding in left:
            if check is not None:
                check()
            key = _join_key(left_binding, shared)
            if key is None:
                candidates = right
            elif unkeyed:
                candidates = keyed.get(key, []) + unkeyed
            else:
                candidates = keyed.get(key, ())
            matched = False
            for right_binding in candidates:
                if not left_binding.compatible(right_binding):
                    continue
                merged = left_binding.merge(right_binding)
                if condition is not None and not effective_boolean_value(condition, merged):
                    continue
                results.append(merged)
                matched = True
            if not matched:
                results.append(left_binding)
        return iter(results)

    def _eval_union(self, node):
        def generate():
            yield from self._eval(node.left)
            yield from self._eval(node.right)

        return generate()

    def _eval_filter(self, node):
        expression = node.expression

        def generate():
            for binding in self._eval(node.operand):
                if effective_boolean_value(expression, binding):
                    yield binding

        return generate()

    # -- solution modifiers --------------------------------------------------------------

    def _eval_project(self, node):
        projection = node.projection

        def generate():
            for binding in self._eval(node.operand):
                if projection is None:
                    yield binding
                else:
                    yield binding.project(projection)

        return generate()

    def _eval_distinct(self, node):
        def generate():
            # Bindings hash (cached) and compare by their mapping, so they
            # can be deduplicated directly.
            seen = set()
            for binding in self._eval(node.operand):
                if binding not in seen:
                    seen.add(binding)
                    yield binding

        return generate()

    def _eval_order_by(self, node):
        solutions = list(self._eval(node.operand))
        # Apply conditions right-to-left so the first condition dominates
        # (stable sort composition).
        for variable, ascending in reversed(node.conditions):
            solutions.sort(
                key=lambda binding: term_sort_key(binding.get(variable)),
                reverse=not ascending,
            )
        return iter(solutions)

    def _eval_slice(self, node):
        start = node.offset or 0
        stop = None if node.limit is None else start + node.limit
        return islice(self._eval(node.operand), start, stop)

    def _eval_group(self, node):
        """GROUP BY partitioning plus aggregate computation."""
        groups = {}
        for binding in self._eval(node.operand):
            key = tuple(binding.get(variable) for variable in node.group_vars)
            groups.setdefault(key, []).append(binding)
        if not groups and not node.group_vars:
            # Aggregates over an empty solution sequence still yield one row
            # (COUNT() = 0), matching SQL/SPARQL 1.1 behaviour.
            groups[()] = []
        results = []
        for key, members in groups.items():
            values = {
                variable.name: term
                for variable, term in zip(node.group_vars, key)
                if term is not None
            }
            for aggregate in node.aggregates:
                values[aggregate.alias.name] = _compute_aggregate(aggregate, members)
            results.append(Binding(values))
        return iter(results)


# -- aggregation ---------------------------------------------------------------------


def _compute_aggregate(aggregate, bindings):
    """Compute one aggregate over the solutions of a group.

    COUNT counts rows (for ``*``) or bound values; SUM/AVG/MIN/MAX operate on
    the typed values of the aggregated variable, skipping unbound rows.
    Numeric results are returned as integer literals when they are whole.
    """
    from ..rdf.terms import Literal

    if aggregate.variable is None:
        return Literal(len(bindings))
    values = [binding.get(aggregate.variable) for binding in bindings]
    values = [value for value in values if value is not None]
    if aggregate.distinct:
        seen = []
        for value in values:
            if value not in seen:
                seen.append(value)
        values = seen
    if aggregate.function == "COUNT":
        return Literal(len(values))
    numbers = []
    for value in values:
        python_value = value.to_python() if isinstance(value, Literal) else None
        if isinstance(python_value, bool) or not isinstance(python_value, (int, float)):
            continue
        numbers.append(python_value)
    return reduce_numbers(aggregate.function, numbers)


# -- helpers shared by strategies --------------------------------------------------


def _bind_triple(pattern, triple, binding):
    """Extend ``binding`` so that ``pattern`` maps onto ``triple``.

    Returns None when the triple conflicts with existing bindings or with a
    repeated variable inside the pattern.
    """
    updates = {}
    for pattern_term, data_term in zip(pattern, triple):
        if not isinstance(pattern_term, Variable):
            if pattern_term != data_term:
                return None
            continue
        name = pattern_term.name
        bound = binding.get(name)
        if bound is not None:
            if bound != data_term:
                return None
            continue
        if name in updates:
            if updates[name] != data_term:
                return None
            continue
        updates[name] = data_term
    if not updates:
        return binding
    merged = binding.as_dict()
    merged.update(updates)
    return Binding(merged)


def _hash_join(left, right):
    """Join two binding lists on their shared variables.

    Bindings that bind every shared variable are joined through a hash table;
    bindings with unbound shared variables (possible after OPTIONAL) fall
    back to pairwise compatibility checks.
    """
    if not left or not right:
        return []
    shared = _shared_variables(left, right)
    results = []
    if not shared:
        for left_binding in left:
            for right_binding in right:
                results.append(left_binding.merge(right_binding))
        return results

    keyed = {}
    unkeyed_right = []
    for right_binding in right:
        key = _join_key(right_binding, shared)
        if key is None:
            unkeyed_right.append(right_binding)
        else:
            keyed.setdefault(key, []).append(right_binding)

    for left_binding in left:
        key = _join_key(left_binding, shared)
        if key is None:
            candidates = right
        else:
            candidates = keyed.get(key, ())
        for right_binding in candidates:
            if left_binding.compatible(right_binding):
                results.append(left_binding.merge(right_binding))
        if key is not None:
            for right_binding in unkeyed_right:
                if left_binding.compatible(right_binding):
                    results.append(left_binding.merge(right_binding))
    return results


def _shared_variables(left, right):
    """Variable names that can be bound on both sides of a join."""
    left_vars = set()
    for binding in left:
        left_vars |= binding.variables()
    right_vars = set()
    for binding in right:
        right_vars |= binding.variables()
    return tuple(sorted(left_vars & right_vars))


def _join_key(binding, shared):
    values = []
    for name in shared:
        value = binding.get(name)
        if value is None:
            return None
        values.append(value)
    return tuple(values)
