"""Translation of parsed queries into the SPARQL algebra.

Follows the SPARQL 1.0 translation rules for the fragment SP2Bench uses:

* adjacent triple patterns form basic graph patterns (BGP),
* ``OPTIONAL { P }`` becomes ``LeftJoin(G, P, F)`` where ``F`` collects the
  FILTER constraints that appear directly inside the optional group — this is
  what gives Q6/Q7 their closed-world-negation semantics, where the inner
  filter references variables bound outside the optional part,
* remaining group-level FILTERs apply to the whole group,
* ``UNION`` becomes a multiset union of its translated branches,
* the query level adds Project / Distinct / OrderBy / Slice (and Ask).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional as Opt

from . import ast


# ---------------------------------------------------------------------------
# Algebra node types
# ---------------------------------------------------------------------------

class AlgebraNode:
    """Base class for algebra operators."""

    def variables(self):
        """All variables that can be bound by this subtree."""
        return set()

    def children(self):
        """Direct child operators (for tree walks)."""
        return ()


@dataclass
class BGP(AlgebraNode):
    """A basic graph pattern: an ordered list of triple patterns.

    ``inline_filters`` holds ``(position, expression)`` pairs produced by the
    filter-pushing optimizer: the expression is applied as soon as the pattern
    at ``position`` has been joined, shrinking intermediate results exactly as
    described in the paper's optimization discussion (Section V).

    ``plan`` optionally carries a :class:`~repro.sparql.planner.BGPPlan`
    (per-step physical strategies and cardinality estimates); when present,
    the id-space evaluator executes the plan instead of re-deriving an order.
    """

    patterns: list = field(default_factory=list)
    inline_filters: list = field(default_factory=list)
    plan: object = None

    def variables(self):
        found = set()
        for pattern in self.patterns:
            found |= pattern.variables()
        return found

    def filters_at(self, position):
        """Expressions scheduled to run right after pattern ``position``."""
        return [expr for pos, expr in self.inline_filters if pos == position]

    def __str__(self):
        return "BGP(" + ", ".join(p.n3() for p in self.patterns) + ")"


@dataclass
class Join(AlgebraNode):
    """Inner join of two operands on their shared variables.

    ``plan`` optionally carries a :class:`~repro.sparql.planner.JoinPlan`
    selecting the physical strategy (hash join, or a bind join that seeds
    the right operand's evaluation with the left rows).
    """

    left: AlgebraNode
    right: AlgebraNode
    plan: object = None

    def variables(self):
        return self.left.variables() | self.right.variables()

    def children(self):
        return (self.left, self.right)

    def __str__(self):
        return f"Join({self.left}, {self.right})"


@dataclass
class LeftJoin(AlgebraNode):
    """Left outer join (OPTIONAL) with an optional join condition."""

    left: AlgebraNode
    right: AlgebraNode
    condition: Opt[ast.Expression] = None

    def variables(self):
        return self.left.variables() | self.right.variables()

    def children(self):
        return (self.left, self.right)

    def __str__(self):
        return f"LeftJoin({self.left}, {self.right}, {self.condition})"


@dataclass
class Union(AlgebraNode):
    """Multiset union of two operands."""

    left: AlgebraNode
    right: AlgebraNode

    def variables(self):
        return self.left.variables() | self.right.variables()

    def children(self):
        return (self.left, self.right)

    def __str__(self):
        return f"Union({self.left}, {self.right})"


@dataclass
class Filter(AlgebraNode):
    """Restriction of an operand by a boolean expression."""

    expression: ast.Expression
    operand: AlgebraNode

    def variables(self):
        return self.operand.variables()

    def children(self):
        return (self.operand,)

    def __str__(self):
        return f"Filter({self.expression}, {self.operand})"


@dataclass
class Project(AlgebraNode):
    """Projection onto a list of variables (None = keep all)."""

    operand: AlgebraNode
    projection: Opt[list] = None

    def variables(self):
        if self.projection is None:
            return self.operand.variables()
        return set(self.projection)

    def children(self):
        return (self.operand,)

    def __str__(self):
        names = "*" if self.projection is None else ", ".join(str(v) for v in self.projection)
        return f"Project([{names}], {self.operand})"


@dataclass
class Distinct(AlgebraNode):
    """Duplicate elimination."""

    operand: AlgebraNode

    def variables(self):
        return self.operand.variables()

    def children(self):
        return (self.operand,)

    def __str__(self):
        return f"Distinct({self.operand})"


@dataclass
class OrderBy(AlgebraNode):
    """Sorting by (variable, ascending) conditions."""

    operand: AlgebraNode
    conditions: list = field(default_factory=list)

    def variables(self):
        return self.operand.variables()

    def children(self):
        return (self.operand,)

    def __str__(self):
        return f"OrderBy({self.conditions}, {self.operand})"


@dataclass
class Slice(AlgebraNode):
    """LIMIT / OFFSET application."""

    operand: AlgebraNode
    limit: Opt[int] = None
    offset: int = 0

    def variables(self):
        return self.operand.variables()

    def children(self):
        return (self.operand,)

    def __str__(self):
        return f"Slice(limit={self.limit}, offset={self.offset}, {self.operand})"


@dataclass
class Group(AlgebraNode):
    """GROUP BY + aggregate computation (the paper's anticipated extension).

    Solutions of the operand are partitioned by the values of ``group_vars``;
    each group yields one solution binding the group variables plus one alias
    per aggregate in ``aggregates`` (a list of :class:`~repro.sparql.ast.Aggregate`).
    """

    operand: AlgebraNode
    group_vars: list = field(default_factory=list)
    aggregates: list = field(default_factory=list)

    def variables(self):
        produced = set(self.group_vars)
        produced.update(aggregate.alias for aggregate in self.aggregates)
        return produced

    def children(self):
        return (self.operand,)

    def __str__(self):
        return (f"Group(by={[str(v) for v in self.group_vars]}, "
                f"aggs={[str(a) for a in self.aggregates]}, {self.operand})")


@dataclass
class Ask(AlgebraNode):
    """Existence test over the operand."""

    operand: AlgebraNode

    def variables(self):
        return self.operand.variables()

    def children(self):
        return (self.operand,)

    def __str__(self):
        return f"Ask({self.operand})"


# ---------------------------------------------------------------------------
# Translation
# ---------------------------------------------------------------------------

def translate_query(query):
    """Translate a parsed SELECT or ASK query into an algebra tree."""
    pattern = translate_group(query.where)
    if query.form == "ASK":
        return Ask(pattern)
    tree = pattern
    projection = query.projected_variables()
    if getattr(query, "aggregates", None) or getattr(query, "group_by", None):
        tree = Group(tree, group_vars=list(query.group_by),
                     aggregates=list(query.aggregates))
    if query.order_by:
        tree = OrderBy(tree, list(query.order_by))
    tree = Project(tree, projection)
    if query.distinct:
        tree = Distinct(tree)
    if query.limit is not None or query.offset:
        tree = Slice(tree, limit=query.limit, offset=query.offset)
    return tree


def translate_group(group):
    """Translate a group graph pattern into algebra, SPARQL-1.0 style."""
    accumulated = None
    current_bgp = None
    group_filters = []

    def flush_bgp():
        nonlocal accumulated, current_bgp
        if current_bgp is not None:
            accumulated = _join(accumulated, current_bgp)
            current_bgp = None

    for element in group.elements:
        if isinstance(element, ast.TriplePatternNode):
            if current_bgp is None:
                current_bgp = BGP([])
            current_bgp.patterns.append(element.pattern)
            continue
        if isinstance(element, ast.FilterNode):
            group_filters.append(element.expression)
            continue
        if isinstance(element, ast.OptionalNode):
            flush_bgp()
            inner, inner_filters = _translate_optional_body(element.group)
            condition = _conjunction(inner_filters)
            accumulated = LeftJoin(accumulated or BGP([]), inner, condition)
            continue
        if isinstance(element, ast.UnionNode):
            flush_bgp()
            accumulated = _join(accumulated, _translate_union(element))
            continue
        if isinstance(element, ast.GroupGraphPattern):
            flush_bgp()
            accumulated = _join(accumulated, translate_group(element))
            continue
        raise TypeError(f"unexpected group element: {element!r}")

    flush_bgp()
    if accumulated is None:
        accumulated = BGP([])
    for expression in group_filters:
        accumulated = Filter(expression, accumulated)
    return accumulated


def _translate_optional_body(group):
    """Translate an OPTIONAL body, splitting off its top-level filters.

    Per the SPARQL algebra, FILTERs that appear directly inside an OPTIONAL
    group become the LeftJoin condition rather than a filter over the inner
    pattern, so they may reference variables bound only on the left side.
    """
    filters = group.filters()
    remaining = ast.GroupGraphPattern(
        [e for e in group.elements if not isinstance(e, ast.FilterNode)]
    )
    return translate_group(remaining), filters


def _translate_union(node):
    branches = [translate_group(branch) for branch in node.branches]
    tree = branches[0]
    for branch in branches[1:]:
        tree = Union(tree, branch)
    return tree


def _join(left, right):
    if left is None:
        return right
    if isinstance(left, BGP) and not left.patterns:
        return right
    return Join(left, right)


def _conjunction(expressions):
    if not expressions:
        return None
    condition = expressions[0]
    for expression in expressions[1:]:
        condition = ast.And(condition, expression)
    return condition


def walk(node):
    """Yield every node of an algebra tree in pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


def collect_bgps(node):
    """Return all BGP nodes in a tree (convenience for the optimizer/tests)."""
    return [n for n in walk(node) if isinstance(n, BGP)]
