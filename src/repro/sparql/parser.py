"""Recursive-descent parser for the SPARQL fragment used by SP2Bench.

Grammar (informal)::

    Query        := Prologue (SelectQuery | AskQuery)
    Prologue     := (PREFIX PNAME_NS IRI)*
    SelectQuery  := SELECT [DISTINCT] (Var+ | '*') WHERE? GroupGraphPattern Modifiers
    AskQuery     := ASK GroupGraphPattern
    Modifiers    := [ORDER BY OrderCondition+] [LIMIT n] [OFFSET n]
    GroupGraphPattern := '{' ( TriplesBlock | Filter | Optional | GroupOrUnion )* '}'
    Optional     := OPTIONAL GroupGraphPattern
    GroupOrUnion := GroupGraphPattern (UNION GroupGraphPattern)*
    Filter       := FILTER ( '(' Expression ')' | BuiltInCall )
    Expression   := Or of And of (Not | Comparison | Primary)

Triple blocks support the ``;`` (same subject) and ``,`` (same subject and
predicate) abbreviations as well as the ``a`` keyword for ``rdf:type``.

SPARQL 1.1 Update operations are parsed by :func:`parse_update`::

    Update       := Prologue ( InsertData | DeleteData | DeleteWhere | Modify )
    InsertData   := INSERT DATA TripleTemplate
    DeleteData   := DELETE DATA TripleTemplate
    DeleteWhere  := DELETE WHERE GroupGraphPattern
    Modify       := (DELETE TripleTemplate)? (INSERT TripleTemplate)?
                    WHERE GroupGraphPattern
    TripleTemplate := '{' TriplesBlock* '}'
"""

from __future__ import annotations

from ..rdf.namespace import DEFAULT_PREFIXES, RDF, Namespace
from ..rdf.terms import BNode, Literal, URIRef, Variable
from ..rdf.triple import Triple
from . import ast
from .errors import SparqlSyntaxError
from .tokenizer import tokenize


def parse_query(text, extra_prefixes=None):
    """Parse SPARQL text into a :class:`SelectQuery` or :class:`AskQuery`.

    ``extra_prefixes`` optionally supplies prefix -> namespace bindings that
    are available even without a PREFIX declaration; the SP2Bench default
    prefixes are always available, matching the query prologue published with
    the benchmark.
    """
    return _Parser(text, extra_prefixes).parse()


def parse_update(text, extra_prefixes=None):
    """Parse SPARQL 1.1 Update text into one update operation.

    Supported forms: ``INSERT DATA { ... }``, ``DELETE DATA { ... }``,
    ``DELETE WHERE { ... }``, and the modify form
    ``[DELETE { t }] [INSERT { t }] WHERE { pattern }``.  Returns an
    :class:`~repro.sparql.ast.InsertDataUpdate`,
    :class:`~repro.sparql.ast.DeleteDataUpdate`, or
    :class:`~repro.sparql.ast.ModifyUpdate`.
    """
    return _Parser(text, extra_prefixes).parse_update()


class _Parser:
    """Single-use recursive descent parser instance."""

    def __init__(self, text, extra_prefixes=None):
        self._tokens = tokenize(text)
        self._index = 0
        self._prefixes = dict(DEFAULT_PREFIXES)
        if extra_prefixes:
            self._prefixes.update(extra_prefixes)

    # -- token plumbing -----------------------------------------------------

    def _peek(self, offset=0):
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self):
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect(self, kind, value=None):
        token = self._peek()
        if token.kind != kind or (value is not None and token.upper() != value.upper()):
            expected = value or kind
            raise SparqlSyntaxError(
                f"expected {expected}, found {token.value!r}", token.position
            )
        return self._advance()

    def _at_keyword(self, *words):
        token = self._peek()
        return token.kind == "KEYWORD" and token.upper() in {w.upper() for w in words}

    def _take_keyword(self, *words):
        if self._at_keyword(*words):
            return self._advance()
        return None

    # -- entry point ----------------------------------------------------------

    def parse(self):
        self._parse_prologue()
        if self._at_keyword("SELECT"):
            query = self._parse_select()
        elif self._at_keyword("ASK"):
            query = self._parse_ask()
        else:
            token = self._peek()
            raise SparqlSyntaxError(
                f"expected SELECT or ASK, found {token.value!r}", token.position
            )
        token = self._peek()
        if token.kind != "EOF":
            raise SparqlSyntaxError(
                f"unexpected trailing input {token.value!r}", token.position
            )
        return query

    def _parse_prologue(self):
        while self._take_keyword("PREFIX"):
            ns_token = self._peek()
            if ns_token.kind == "PNAME_NS":
                prefix = ns_token.value[:-1]
                self._advance()
            elif ns_token.kind == "QNAME" and ns_token.value.endswith(":"):
                prefix = ns_token.value[:-1]
                self._advance()
            else:
                raise SparqlSyntaxError(
                    f"expected prefix name, found {ns_token.value!r}", ns_token.position
                )
            iri_token = self._expect("IRI")
            self._prefixes[prefix] = Namespace(iri_token.value[1:-1])

    # -- query forms ----------------------------------------------------------

    def _parse_select(self):
        self._expect("KEYWORD", "SELECT")
        distinct = bool(self._take_keyword("DISTINCT") or self._take_keyword("REDUCED"))
        variables = []
        aggregates = []
        if self._peek().kind == "STAR":
            self._advance()
        else:
            while True:
                token = self._peek()
                if token.kind == "VAR":
                    variables.append(Variable(self._advance().value))
                    continue
                if token.kind == "LPAREN":
                    aggregates.append(self._parse_aggregate_item())
                    continue
                break
            if not variables and not aggregates:
                token = self._peek()
                raise SparqlSyntaxError(
                    f"expected projection variables or '*', found {token.value!r}",
                    token.position,
                )
        self._take_keyword("WHERE")
        where = self._parse_group()
        group_by = self._parse_group_by()
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit_offset()
        return ast.SelectQuery(
            variables=variables,
            where=where,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            offset=offset,
            prefixes=dict(self._prefixes),
            aggregates=aggregates,
            group_by=group_by,
        )

    _AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    def _parse_aggregate_item(self):
        """Parse ``(COUNT(DISTINCT ?x) AS ?alias)`` style SELECT items."""
        self._expect("LPAREN")
        token = self._peek()
        if not self._at_keyword(*self._AGGREGATE_FUNCTIONS):
            raise SparqlSyntaxError(
                f"expected an aggregate function, found {token.value!r}", token.position
            )
        function = self._advance().upper()
        self._expect("LPAREN")
        distinct = bool(self._take_keyword("DISTINCT"))
        if self._peek().kind == "STAR":
            self._advance()
            variable = None
        else:
            variable = Variable(self._expect("VAR").value)
        self._expect("RPAREN")
        self._expect("KEYWORD", "AS")
        alias = Variable(self._expect("VAR").value)
        self._expect("RPAREN")
        if function != "COUNT" and variable is None:
            raise SparqlSyntaxError(f"{function}(*) is not supported", token.position)
        return ast.Aggregate(function=function, variable=variable,
                             alias=alias, distinct=distinct)

    def _parse_group_by(self):
        variables = []
        if self._take_keyword("GROUP"):
            self._expect("KEYWORD", "BY")
            while self._peek().kind == "VAR":
                variables.append(Variable(self._advance().value))
            if not variables:
                token = self._peek()
                raise SparqlSyntaxError("GROUP BY without variables", token.position)
        return variables

    def _parse_ask(self):
        self._expect("KEYWORD", "ASK")
        self._take_keyword("WHERE")
        where = self._parse_group()
        return ast.AskQuery(where=where, prefixes=dict(self._prefixes))

    # -- update forms ---------------------------------------------------------

    def parse_update(self):
        """Entry point for SPARQL 1.1 Update text (one operation)."""
        self._parse_prologue()
        if self._at_keyword("INSERT"):
            self._advance()
            if self._take_keyword("DATA"):
                triples = self._parse_triple_template(ground=True)
                update = ast.InsertDataUpdate(triples=triples,
                                              prefixes=dict(self._prefixes))
            else:
                update = self._parse_modify(delete_templates=[])
        elif self._at_keyword("DELETE"):
            self._advance()
            if self._take_keyword("DATA"):
                triples = self._parse_triple_template(ground=True,
                                                      allow_bnodes=False)
                update = ast.DeleteDataUpdate(triples=triples,
                                              prefixes=dict(self._prefixes))
            elif self._take_keyword("WHERE"):
                # DELETE WHERE { P } is shorthand for DELETE { P } WHERE { P }.
                where = self._parse_group()
                patterns = self._only_triple_patterns(where)
                update = ast.ModifyUpdate(delete_templates=patterns,
                                          insert_templates=[],
                                          where=where,
                                          prefixes=dict(self._prefixes))
            else:
                deletes = self._parse_triple_template(allow_bnodes=False)
                if self._take_keyword("INSERT"):
                    update = self._parse_modify(delete_templates=deletes)
                else:
                    update = self._parse_modify(delete_templates=deletes,
                                                insert_templates=[])
        else:
            token = self._peek()
            raise SparqlSyntaxError(
                f"expected INSERT or DELETE, found {token.value!r}",
                token.position,
            )
        token = self._peek()
        if token.kind != "EOF":
            raise SparqlSyntaxError(
                f"unexpected trailing input {token.value!r}", token.position
            )
        return update

    def _parse_modify(self, delete_templates, insert_templates=None):
        """Finish a modify form after its DELETE (and maybe INSERT) keyword.

        Called with ``insert_templates=None`` when an ``INSERT { t }`` block
        still has to be parsed; the WHERE clause is mandatory either way.
        """
        if insert_templates is None:
            insert_templates = self._parse_triple_template()
        if not delete_templates and not insert_templates:
            token = self._peek()
            raise SparqlSyntaxError(
                "update with empty DELETE and INSERT templates", token.position
            )
        self._expect("KEYWORD", "WHERE")
        where = self._parse_group()
        return ast.ModifyUpdate(delete_templates=delete_templates,
                                insert_templates=insert_templates,
                                where=where,
                                prefixes=dict(self._prefixes))

    def _parse_triple_template(self, ground=False, allow_bnodes=True):
        """Parse a ``{ triples }`` block into a list of triple (patterns).

        ``ground=True`` rejects variables (the DATA forms insert/delete
        verbatim triples); ``allow_bnodes=False`` additionally rejects blank
        nodes (DELETE templates, where a blank node could never match).
        """
        open_token = self._expect("LBRACE")
        group = ast.GroupGraphPattern()
        while True:
            token = self._peek()
            if token.kind == "RBRACE":
                self._advance()
                break
            if token.kind == "EOF":
                raise SparqlSyntaxError("unterminated triple template",
                                        token.position)
            self._parse_triples_block(group)
        triples = []
        for element in group.elements:
            pattern = element.pattern
            for term in (pattern.subject, pattern.predicate, pattern.object):
                if ground and isinstance(term, Variable):
                    raise SparqlSyntaxError(
                        f"variable {term.n3()} not allowed in a DATA block",
                        open_token.position,
                    )
                if not allow_bnodes and isinstance(term, BNode):
                    raise SparqlSyntaxError(
                        f"blank node {term.n3()} not allowed in a DELETE "
                        "template", open_token.position,
                    )
            triples.append(pattern)
        return triples

    def _only_triple_patterns(self, group):
        """The triple patterns of a DELETE WHERE group (nothing else allowed)."""
        patterns = []
        for element in group.elements:
            if not isinstance(element, ast.TriplePatternNode):
                raise SparqlSyntaxError(
                    f"DELETE WHERE allows only triple patterns, found "
                    f"{element!s}", None,
                )
            for term in (element.pattern.subject, element.pattern.predicate,
                         element.pattern.object):
                if isinstance(term, BNode):
                    raise SparqlSyntaxError(
                        f"blank node {term.n3()} not allowed in DELETE WHERE",
                        None,
                    )
            patterns.append(element.pattern)
        return patterns

    def _parse_order_by(self):
        conditions = []
        if self._take_keyword("ORDER"):
            self._expect("KEYWORD", "BY")
            while True:
                ascending = True
                if self._take_keyword("ASC"):
                    self._expect("LPAREN")
                    variable = Variable(self._expect("VAR").value)
                    self._expect("RPAREN")
                elif self._take_keyword("DESC"):
                    ascending = False
                    self._expect("LPAREN")
                    variable = Variable(self._expect("VAR").value)
                    self._expect("RPAREN")
                elif self._peek().kind == "VAR":
                    variable = Variable(self._advance().value)
                else:
                    break
                conditions.append((variable, ascending))
            if not conditions:
                token = self._peek()
                raise SparqlSyntaxError("ORDER BY without conditions", token.position)
        return conditions

    def _parse_limit_offset(self):
        limit = None
        offset = 0
        # LIMIT and OFFSET may appear in either order.
        for _ in range(2):
            if self._take_keyword("LIMIT"):
                limit = int(self._expect("NUMBER").value)
            elif self._take_keyword("OFFSET"):
                offset = int(self._expect("NUMBER").value)
        return limit, offset

    # -- graph patterns ---------------------------------------------------------

    def _parse_group(self):
        self._expect("LBRACE")
        group = ast.GroupGraphPattern()
        while True:
            token = self._peek()
            if token.kind == "RBRACE":
                self._advance()
                return group
            if token.kind == "EOF":
                raise SparqlSyntaxError("unterminated group graph pattern", token.position)
            if self._at_keyword("FILTER"):
                self._advance()
                group.elements.append(ast.FilterNode(self._parse_filter_constraint()))
                self._take_dot()
                continue
            if self._at_keyword("OPTIONAL"):
                self._advance()
                group.elements.append(ast.OptionalNode(self._parse_group()))
                self._take_dot()
                continue
            if token.kind == "LBRACE":
                group.elements.append(self._parse_group_or_union())
                self._take_dot()
                continue
            self._parse_triples_block(group)
        # unreachable
        return group

    def _take_dot(self):
        if self._peek().kind == "DOT":
            self._advance()
            return True
        return False

    def _parse_group_or_union(self):
        branches = [self._parse_group()]
        while self._take_keyword("UNION"):
            branches.append(self._parse_group())
        if len(branches) == 1:
            return branches[0]
        return ast.UnionNode(tuple(branches))

    def _parse_triples_block(self, group):
        """Parse one subject with its predicate-object list."""
        subject = self._parse_term(position="subject")
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term(position="object")
                group.elements.append(
                    ast.TriplePatternNode(Triple(subject, predicate, obj))
                )
                if self._peek().kind == "COMMA":
                    self._advance()
                    continue
                break
            if self._peek().kind == "SEMICOLON":
                self._advance()
                # A dangling ';' before '}' or '.' is tolerated.
                if self._peek().kind in ("RBRACE", "DOT"):
                    break
                continue
            break
        self._take_dot()

    def _parse_verb(self):
        token = self._peek()
        if token.kind == "KEYWORD" and token.upper() == "A":
            self._advance()
            return RDF.type
        term = self._parse_term(position="predicate")
        if isinstance(term, (URIRef, Variable)):
            return term
        raise SparqlSyntaxError(
            f"invalid predicate {token.value!r}", token.position
        )

    def _parse_term(self, position):
        token = self._peek()
        if token.kind == "VAR":
            self._advance()
            return Variable(token.value)
        if token.kind == "IRI":
            self._advance()
            return URIRef(token.value[1:-1])
        if token.kind == "QNAME":
            self._advance()
            return self._expand_qname(token)
        if token.kind == "BLANK":
            self._advance()
            return BNode(token.value[2:])
        if token.kind == "STRING" and position == "object":
            return self._parse_literal()
        if token.kind == "NUMBER" and position == "object":
            self._advance()
            return _number_literal(token.value)
        if token.kind == "KEYWORD" and token.upper() in ("TRUE", "FALSE"):
            self._advance()
            return Literal(token.upper() == "TRUE")
        raise SparqlSyntaxError(
            f"unexpected token {token.value!r} in {position} position", token.position
        )

    def _expand_qname(self, token):
        prefix, _, local = token.value.partition(":")
        namespace = self._prefixes.get(prefix)
        if namespace is None:
            raise SparqlSyntaxError(f"unknown prefix {prefix!r}", token.position)
        base = namespace.base if isinstance(namespace, Namespace) else str(namespace)
        return URIRef(base + local)

    def _parse_literal(self):
        token = self._expect("STRING")
        lexical = _unescape_string(token.value[1:-1])
        datatype = None
        if self._peek().kind == "TYPED_HINT":
            self._advance()
            datatype_token = self._peek()
            if datatype_token.kind == "IRI":
                self._advance()
                datatype = datatype_token.value[1:-1]
            elif datatype_token.kind == "QNAME":
                self._advance()
                datatype = self._expand_qname(datatype_token).value
            else:
                raise SparqlSyntaxError(
                    "expected datatype IRI after '^^'", datatype_token.position
                )
        return Literal(lexical, datatype=datatype)

    # -- filter expressions ------------------------------------------------------

    def _parse_filter_constraint(self):
        if self._peek().kind == "LPAREN":
            self._advance()
            expression = self._parse_expression()
            self._expect("RPAREN")
            return expression
        return self._parse_builtin_or_primary()

    def _parse_expression(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self._peek().kind == "OR":
            self._advance()
            left = ast.Or(left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_relational()
        while self._peek().kind == "AND":
            self._advance()
            left = ast.And(left, self._parse_relational())
        return left

    _COMPARISON_KINDS = {
        "EQ": "=",
        "NEQ": "!=",
        "LT": "<",
        "GT": ">",
        "LE": "<=",
        "GE": ">=",
    }

    def _parse_relational(self):
        left = self._parse_unary()
        token = self._peek()
        if token.kind in self._COMPARISON_KINDS:
            operator = self._COMPARISON_KINDS[token.kind]
            self._advance()
            right = self._parse_unary()
            return ast.Comparison(operator, left, right)
        return left

    def _parse_unary(self):
        token = self._peek()
        if token.kind == "BANG":
            self._advance()
            return ast.Not(self._parse_unary())
        if token.kind == "LPAREN":
            self._advance()
            expression = self._parse_expression()
            self._expect("RPAREN")
            return expression
        return self._parse_builtin_or_primary()

    def _parse_builtin_or_primary(self):
        token = self._peek()
        if self._at_keyword("BOUND"):
            self._advance()
            self._expect("LPAREN")
            variable = Variable(self._expect("VAR").value)
            self._expect("RPAREN")
            return ast.Bound(variable)
        if self._at_keyword("REGEX"):
            self._advance()
            self._expect("LPAREN")
            text = self._parse_expression()
            self._expect("COMMA")
            pattern = self._parse_expression()
            flags = None
            if self._peek().kind == "COMMA":
                self._advance()
                flags = self._parse_expression()
            self._expect("RPAREN")
            return ast.Regex(text, pattern, flags)
        if token.kind == "VAR":
            self._advance()
            return ast.TermExpression(Variable(token.value))
        if token.kind == "IRI":
            self._advance()
            return ast.TermExpression(URIRef(token.value[1:-1]))
        if token.kind == "QNAME":
            self._advance()
            return ast.TermExpression(self._expand_qname(token))
        if token.kind == "STRING":
            return ast.TermExpression(self._parse_literal())
        if token.kind == "NUMBER":
            self._advance()
            return ast.TermExpression(_number_literal(token.value))
        if token.kind == "KEYWORD" and token.upper() in ("TRUE", "FALSE"):
            self._advance()
            return ast.TermExpression(Literal(token.upper() == "TRUE"))
        raise SparqlSyntaxError(
            f"unexpected token {token.value!r} in expression", token.position
        )


def _number_literal(text):
    if "." in text:
        return Literal(float(text))
    return Literal(int(text))


_STRING_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "'": "'"}


def _unescape_string(text):
    result = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            escape = text[index + 1]
            if escape in _STRING_ESCAPES:
                result.append(_STRING_ESCAPES[escape])
                index += 2
                continue
            if escape == "u" and index + 5 < len(text):
                result.append(chr(int(text[index + 2:index + 6], 16)))
                index += 6
                continue
        result.append(char)
        index += 1
    return "".join(result)
