"""Query optimization: triple-pattern reordering and filter pushing.

These are exactly the two optimization families the paper designs its
queries around (Section V, Table II rows 4-5):

* **Triple-pattern reordering based on selectivity estimation** — analogous
  to relational join reordering.  Patterns inside a BGP are greedily ordered
  so that the estimated-cheapest pattern is evaluated first and every later
  pattern shares a variable with the part already evaluated whenever
  possible, which keeps intermediate results small (crucial for Q4/Q8).
* **Filter pushing** — conjuncts of a FILTER are evaluated as soon as all
  their variables are bound instead of after the whole block, analogous to
  selection pushing in relational algebra (crucial for Q3abc, Q5a, Q8).

Both transformations are pure functions over the algebra tree, so the engine
can be configured with either, both, or none of them — that switch is the
ablation axis the benchmark harness exercises.
"""

from __future__ import annotations

from dataclasses import replace

from ..rdf.terms import Variable
from . import algebra, ast


def optimize(tree, store, reorder=True, push_filters=True):
    """Return an optimized copy of the algebra ``tree``.

    ``store`` supplies cardinality estimates via ``estimate_count``; passing
    ``None`` disables statistics-informed ordering (a static heuristic that
    prefers patterns with more bound components is used instead).
    """
    return _rewrite(tree, store, reorder, push_filters)


def _rewrite(node, store, reorder, push_filters):
    if isinstance(node, algebra.BGP):
        patterns = list(node.patterns)
        if reorder:
            patterns = reorder_patterns(patterns, store)
        return algebra.BGP(patterns, inline_filters=list(node.inline_filters))
    if isinstance(node, algebra.Filter):
        operand = _rewrite(node.operand, store, reorder, push_filters)
        if push_filters:
            return push_filter(node.expression, operand)
        return algebra.Filter(node.expression, operand)
    if isinstance(node, algebra.Join):
        return algebra.Join(
            _rewrite(node.left, store, reorder, push_filters),
            _rewrite(node.right, store, reorder, push_filters),
        )
    if isinstance(node, algebra.LeftJoin):
        return algebra.LeftJoin(
            _rewrite(node.left, store, reorder, push_filters),
            _rewrite(node.right, store, reorder, push_filters),
            node.condition,
        )
    if isinstance(node, algebra.Union):
        return algebra.Union(
            _rewrite(node.left, store, reorder, push_filters),
            _rewrite(node.right, store, reorder, push_filters),
        )
    if isinstance(node, (algebra.Project, algebra.Distinct, algebra.OrderBy,
                         algebra.Slice, algebra.Ask, algebra.Group)):
        return replace(node, operand=_rewrite(node.operand, store, reorder, push_filters))
    return node


# ---------------------------------------------------------------------------
# Pattern reordering
# ---------------------------------------------------------------------------

def reorder_patterns(patterns, store=None):
    """Greedy selectivity-based ordering of BGP triple patterns."""
    if len(patterns) <= 1:
        return list(patterns)
    remaining = list(patterns)
    ordered = []
    bound_variables = set()

    def cost(pattern):
        return estimate_pattern_cost(pattern, store, bound_variables)

    while remaining:
        connected = [
            p for p in remaining
            if not bound_variables or _variable_names(p) & bound_variables
        ]
        candidates = connected or remaining
        best = min(candidates, key=cost)
        ordered.append(best)
        remaining.remove(best)
        bound_variables |= _variable_names(best)
    return ordered


def estimate_pattern_cost(pattern, store, bound_variables):
    """Estimated result cardinality of a pattern given already-bound variables.

    Bound positions (constants or variables already bound upstream) reduce the
    estimate; with a store the estimate starts from index statistics, without
    one it falls back to a static heuristic based on the number of unbound
    positions.
    """
    lookup = []
    unbound = 0
    for term in pattern:
        if isinstance(term, Variable):
            lookup.append(None)
            if term.name not in bound_variables:
                unbound += 1
        else:
            lookup.append(term)
    if store is not None:
        base = float(store.estimate_count(*lookup))
    else:
        base = 10.0 ** sum(1 for t in lookup if t is None)
    # Each join variable already bound upstream shrinks the expected result.
    bound_join_vars = sum(
        1 for term in pattern
        if isinstance(term, Variable) and term.name in bound_variables
    )
    return base / (10.0 ** bound_join_vars) + 0.01 * unbound


def _variable_names(pattern):
    return {term.name for term in pattern if isinstance(term, Variable)}


# ---------------------------------------------------------------------------
# Filter pushing
# ---------------------------------------------------------------------------

def split_conjuncts(expression):
    """Flatten nested ``&&`` expressions into a list of conjuncts."""
    if isinstance(expression, ast.And):
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def push_filter(expression, operand):
    """Push conjuncts of ``expression`` into ``operand`` where possible.

    Conjuncts whose variables are all produced by a BGP become inline filters
    of that BGP, positioned right after the first pattern index at which all
    their variables are bound.  Conjuncts that cannot be pushed stay in an
    outer Filter node.
    """
    conjuncts = split_conjuncts(expression)
    remaining = []
    for conjunct in conjuncts:
        if not _push_into(conjunct, operand):
            remaining.append(conjunct)
    if not remaining:
        return operand
    condition = remaining[0]
    for conjunct in remaining[1:]:
        condition = ast.And(condition, conjunct)
    return algebra.Filter(condition, operand)


def _push_into(conjunct, node):
    """Try to attach ``conjunct`` inside ``node``; returns True on success."""
    needed = {variable.name for variable in conjunct.variables()}
    if not needed:
        return False
    if isinstance(node, algebra.BGP):
        bound = set()
        for position, pattern in enumerate(node.patterns):
            bound |= _variable_names(pattern)
            if needed <= bound:
                node.inline_filters.append((position, conjunct))
                return True
        return False
    if isinstance(node, algebra.Join):
        # Prefer the child that binds all required variables.
        return _push_into(conjunct, node.left) or _push_into(conjunct, node.right)
    if isinstance(node, algebra.LeftJoin):
        # Only the left (mandatory) side may be filtered without changing
        # OPTIONAL semantics, and only when the optional side cannot also bind
        # any of the filter variables (otherwise the filter must see the
        # merged solution).
        left_vars = {v.name if isinstance(v, Variable) else str(v)
                     for v in node.left.variables()}
        right_vars = {v.name if isinstance(v, Variable) else str(v)
                      for v in node.right.variables()}
        if needed <= left_vars and not (needed & right_vars):
            return _push_into(conjunct, node.left)
        return False
    if isinstance(node, (algebra.Project, algebra.Distinct, algebra.OrderBy, algebra.Slice)):
        return _push_into(conjunct, node.operand)
    if isinstance(node, algebra.Group):
        # Filters above a GROUP BY reference aggregate aliases; never push.
        return False
    return False
