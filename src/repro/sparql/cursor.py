"""Streaming result cursors and cooperative evaluation deadlines.

The serving-oriented half of the engine API: where
:class:`~repro.sparql.results.SelectResult` materializes every solution
before the caller sees row one, a cursor is a *lazy, iterate-once* view over
an evaluation that is still running.  Rows are produced on demand, so

* ``LIMIT k`` queries stop evaluating after the k-th solution leaves the
  pipeline (the upstream generators are simply never pulled again),
* time-to-first-row is decoupled from time-to-last-row, and
* a :class:`Deadline` can interrupt the evaluation *mid-stream* with
  :class:`~repro.sparql.errors.QueryTimeout` — the paper's per-query budget
  enforced while the query runs, not classified after it finished.

:class:`SelectCursor` and :class:`AskCursor` share the cursor protocol
(``all()`` / ``first()`` / ``rows()`` / ``close()`` / ``serialize()``), so
benchmark and serving code can treat both query forms uniformly.  ``all()``
returns the eager result containers from :mod:`.results`, which keep their
multiset ``__eq__`` — the compatibility boundary for existing tests and the
cross-engine agreement checks.
"""

from __future__ import annotations

import time

from .bindings import variable_name
from .errors import QueryTimeout
from .results import AskResult, SelectResult
from .serializers import serialize, write


class Deadline:
    """A wall-clock budget that evaluation loops check cooperatively.

    Pure-Python evaluation cannot be preempted portably, so the evaluators
    call :meth:`check` inside their row-producing loops; the first check
    past the expiry raises :class:`QueryTimeout`.  A ``None`` budget never
    expires (:meth:`check` still exists so call sites stay branch-free).
    """

    __slots__ = ("budget", "expires_at")

    def __init__(self, budget):
        self.budget = budget
        self.expires_at = (
            None if budget is None else time.perf_counter() + max(budget, 0.0)
        )

    @classmethod
    def resolve(cls, deadline):
        """Coerce ``None`` / seconds / Deadline into a Deadline or None."""
        if deadline is None or isinstance(deadline, cls):
            return deadline
        return cls(float(deadline))

    def expired(self):
        return self.expires_at is not None and time.perf_counter() >= self.expires_at

    def remaining(self):
        """Seconds left, or None for an unbounded deadline."""
        if self.expires_at is None:
            return None
        return self.expires_at - time.perf_counter()

    def check(self):
        """Raise :class:`QueryTimeout` once the budget is spent."""
        if self.expires_at is not None and time.perf_counter() >= self.expires_at:
            raise QueryTimeout(budget=self.budget)

    def guard(self, iterable):
        """Wrap an iterable so every pulled item re-checks the deadline."""
        if self.expires_at is None:
            return iter(iterable)

        def generate():
            for item in iterable:
                self.check()
                yield item

        return generate()

    def __repr__(self):
        return f"Deadline(budget={self.budget!r})"


class ResultCursor:
    """Protocol base of the streaming cursors (SELECT and ASK).

    Cursors are iterate-once: consuming methods (iteration, ``all()``,
    ``first()``, ``rows()``, ``serialize()``) drain whatever has not been
    consumed yet.  They are also context managers; leaving the ``with``
    block closes the cursor and releases the underlying evaluation.
    """

    form = None

    def all(self):
        raise NotImplementedError

    def first(self):
        raise NotImplementedError

    def rows(self):
        raise NotImplementedError

    def close(self):
        raise NotImplementedError

    def serialize(self, format="json"):
        """Drain the cursor into one W3C SPARQL-results string."""
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False


class SelectCursor(ResultCursor):
    """A lazy, iterate-once stream of SELECT solutions.

    ``bindings`` is the evaluator's (lazy) solution iterator; nothing has
    been evaluated beyond the algebra-tree setup when the cursor is created.
    ``deadline`` re-checks the budget on every row that crosses the result
    boundary (the evaluators additionally check inside their own loops, so
    row-free stretches of work are interrupted too).
    """

    form = "SELECT"

    def __init__(self, variables, bindings, deadline=None):
        self.variables = list(variables)
        self.deadline = deadline
        self._bindings = iter(bindings)
        self._closed = False
        #: Rows yielded so far (final count once the cursor is exhausted).
        self.count = 0

    # -- streaming consumption ------------------------------------------------

    def __iter__(self):
        return self

    def __next__(self):
        if self._closed:
            raise StopIteration
        try:
            binding = next(self._bindings)
        except StopIteration:
            self.close()
            raise
        if self.deadline is not None:
            self.deadline.check()
        self.count += 1
        return binding

    def rows(self):
        """Stream result rows as tuples in projection-variable order."""
        names = [variable_name(v) for v in self.variables]
        for binding in self:
            yield tuple(binding.get(name) for name in names)

    def first(self):
        """The next solution (or None when exhausted); closes the cursor."""
        for binding in self:
            self.close()
            return binding
        return None

    def all(self):
        """Drain the remaining solutions into an eager :class:`SelectResult`."""
        return SelectResult(self.variables, list(self))

    def close(self):
        """Release the underlying evaluation; further iteration yields nothing."""
        if self._closed:
            return
        self._closed = True
        close = getattr(self._bindings, "close", None)
        if close is not None:
            close()

    @property
    def closed(self):
        return self._closed

    # -- serialization --------------------------------------------------------

    def serialize(self, format="json"):
        return serialize(self.variables, self, format)

    def write(self, fp, format="json"):
        """Stream-serialize the remaining rows to a file object."""
        return write(fp, self.variables, self, format)

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return (f"SelectCursor(vars={[str(v) for v in self.variables]}, "
                f"consumed={self.count}, {state})")


class AskCursor(ResultCursor):
    """The ASK side of the cursor protocol.

    The boolean is computed by the time the cursor exists (the evaluator
    short-circuits on the first solution), so every consuming method is
    O(1); the class exists to give ASK and SELECT one uniform surface.
    """

    form = "ASK"

    def __init__(self, value, deadline=None):
        self.value = bool(value)
        self.deadline = deadline
        self._closed = False

    def __bool__(self):
        return self.value

    def __iter__(self):
        return iter(())

    def first(self):
        """The boolean answer (symmetric with SelectCursor.first())."""
        self.close()
        return self.value

    def all(self):
        self.close()
        return AskResult(self.value)

    def rows(self):
        """A single one-cell row carrying the boolean answer."""
        yield (self.value,)

    def close(self):
        self._closed = True

    @property
    def closed(self):
        return self._closed

    def serialize(self, format="json"):
        return serialize((), self, format)

    def write(self, fp, format="json"):
        return write(fp, (), self, format)

    def __repr__(self):
        return f"AskCursor({self.value})"
