"""Eager query-result containers: the materialized view of a cursor.

Since the prepared/streaming redesign the primary result surface is the
cursor protocol (:mod:`.cursor`): ``engine.prepare(text).run()`` hands back
a lazy, iterate-once :class:`~repro.sparql.cursor.SelectCursor` or
:class:`~repro.sparql.cursor.AskCursor`.  The classes below are what
``cursor.all()`` (and the compatible eager shorthand ``engine.query()``)
materialize into: random access, ``len()``, and the order-insensitive
multiset ``__eq__`` that the cross-engine agreement tests and benchmarks
compare with.  They share the cursor's serialization surface, so eager and
streaming results emit byte-identical W3C SPARQL-results documents.
"""

from __future__ import annotations

from .bindings import variable_name
from . import serializers


class SelectResult:
    """The result of a SELECT query: an ordered sequence of solution mappings."""

    form = "SELECT"

    def __init__(self, variables, bindings):
        self.variables = list(variables)
        self.bindings = list(bindings)

    def __len__(self):
        return len(self.bindings)

    def __iter__(self):
        return iter(self.bindings)

    def __getitem__(self, index):
        return self.bindings[index]

    def __bool__(self):
        return bool(self.bindings)

    def first(self):
        """The first solution mapping, or None when the result is empty."""
        return self.bindings[0] if self.bindings else None

    def rows(self):
        """Result rows as tuples following the projection variable order."""
        names = [variable_name(v) for v in self.variables]
        return [tuple(binding.get(name) for name in names) for binding in self.bindings]

    def column(self, variable):
        """All values of one projection variable, in row order."""
        name = variable_name(variable)
        return [binding.get(name) for binding in self.bindings]

    def as_multiset(self):
        """The result as a multiset of frozen mappings (order-insensitive compare)."""
        counts = {}
        for binding in self.bindings:
            key = frozenset(binding.items())
            counts[key] = counts.get(key, 0) + 1
        return counts

    def serialize(self, format="json"):
        """The result as one W3C SPARQL-results document (json/csv/tsv)."""
        return serializers.serialize(self.variables, self.bindings, format)

    def write(self, fp, format="json"):
        """Serialize the result to a file object; returns rows written."""
        return serializers.write(fp, self.variables, self.bindings, format)

    def __eq__(self, other):
        if not isinstance(other, SelectResult):
            return NotImplemented
        return self.as_multiset() == other.as_multiset()

    def __repr__(self):
        return f"SelectResult(rows={len(self.bindings)}, vars={[str(v) for v in self.variables]})"


class AskResult:
    """The result of an ASK query: a boolean."""

    form = "ASK"

    def __init__(self, value):
        self.value = bool(value)

    def __bool__(self):
        return self.value

    def __eq__(self, other):
        if isinstance(other, AskResult):
            return self.value == other.value
        if isinstance(other, bool):
            return self.value == other
        return NotImplemented

    def __hash__(self):
        return hash((AskResult, self.value))

    def __len__(self):
        # Mirrors the paper's result-size tables where ASK answers count as one row.
        return 1

    def serialize(self, format="json"):
        """The answer as one W3C SPARQL-results document (json/csv/tsv)."""
        return serializers.serialize((), self, format)

    def write(self, fp, format="json"):
        return serializers.write(fp, (), self, format)

    def __repr__(self):
        return f"AskResult({self.value})"
