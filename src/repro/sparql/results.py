"""Query result containers returned by :class:`~repro.sparql.engine.SparqlEngine`."""

from __future__ import annotations


class SelectResult:
    """The result of a SELECT query: an ordered sequence of solution mappings."""

    form = "SELECT"

    def __init__(self, variables, bindings):
        self.variables = list(variables)
        self.bindings = list(bindings)

    def __len__(self):
        return len(self.bindings)

    def __iter__(self):
        return iter(self.bindings)

    def __getitem__(self, index):
        return self.bindings[index]

    def __bool__(self):
        return bool(self.bindings)

    def rows(self):
        """Result rows as tuples following the projection variable order."""
        names = [v.name if hasattr(v, "name") else str(v).lstrip("?") for v in self.variables]
        return [tuple(binding.get(name) for name in names) for binding in self.bindings]

    def column(self, variable):
        """All values of one projection variable, in row order."""
        name = variable.name if hasattr(variable, "name") else str(variable).lstrip("?")
        return [binding.get(name) for binding in self.bindings]

    def as_multiset(self):
        """The result as a multiset of frozen mappings (order-insensitive compare)."""
        counts = {}
        for binding in self.bindings:
            key = frozenset(binding.items())
            counts[key] = counts.get(key, 0) + 1
        return counts

    def __eq__(self, other):
        if not isinstance(other, SelectResult):
            return NotImplemented
        return self.as_multiset() == other.as_multiset()

    def __repr__(self):
        return f"SelectResult(rows={len(self.bindings)}, vars={[str(v) for v in self.variables]})"


class AskResult:
    """The result of an ASK query: a boolean."""

    form = "ASK"

    def __init__(self, value):
        self.value = bool(value)

    def __bool__(self):
        return self.value

    def __eq__(self, other):
        if isinstance(other, AskResult):
            return self.value == other.value
        if isinstance(other, bool):
            return self.value == other
        return NotImplemented

    def __hash__(self):
        return hash((AskResult, self.value))

    def __len__(self):
        # Mirrors the paper's result-size tables where ASK answers count as one row.
        return 1

    def __repr__(self):
        return f"AskResult({self.value})"
