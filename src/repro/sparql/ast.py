"""Abstract syntax tree produced by the SPARQL parser.

The AST mirrors the surface syntax (group graph patterns with triple
patterns, FILTER, OPTIONAL, UNION, nested groups, and solution modifiers);
:mod:`repro.sparql.algebra` translates it into the algebra the evaluator
executes.  Expression nodes live here too because they appear both in the AST
and, unchanged, in the algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional as Opt

from ..rdf.terms import Term, Variable
from ..rdf.triple import Triple


# ---------------------------------------------------------------------------
# Expressions (used by FILTER)
# ---------------------------------------------------------------------------

class Expression:
    """Base class for FILTER expression nodes."""

    def variables(self):
        """Set of variables mentioned anywhere in the expression."""
        return set()


@dataclass(frozen=True)
class TermExpression(Expression):
    """A constant RDF term or a variable used as an expression."""

    term: Term

    def variables(self):
        if isinstance(self.term, Variable):
            return {self.term}
        return set()

    def __str__(self):
        return self.term.n3()


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison: ``=, !=, <, >, <=, >=``."""

    operator: str
    left: Expression
    right: Expression

    def variables(self):
        return self.left.variables() | self.right.variables()

    def __str__(self):
        return f"({self.left} {self.operator} {self.right})"


@dataclass(frozen=True)
class And(Expression):
    """Logical conjunction ``&&``."""

    left: Expression
    right: Expression

    def variables(self):
        return self.left.variables() | self.right.variables()

    def __str__(self):
        return f"({self.left} && {self.right})"


@dataclass(frozen=True)
class Or(Expression):
    """Logical disjunction ``||``."""

    left: Expression
    right: Expression

    def variables(self):
        return self.left.variables() | self.right.variables()

    def __str__(self):
        return f"({self.left} || {self.right})"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation ``!``."""

    operand: Expression

    def variables(self):
        return self.operand.variables()

    def __str__(self):
        return f"(! {self.operand})"


@dataclass(frozen=True)
class Bound(Expression):
    """The ``bound(?var)`` builtin used for closed-world negation (Q6, Q7)."""

    variable: Variable

    def variables(self):
        return {self.variable}

    def __str__(self):
        return f"bound({self.variable})"


@dataclass(frozen=True)
class Regex(Expression):
    """The ``regex(expr, pattern [, flags])`` builtin."""

    text: Expression
    pattern: Expression
    flags: Opt[Expression] = None

    def variables(self):
        found = self.text.variables() | self.pattern.variables()
        if self.flags is not None:
            found |= self.flags.variables()
        return found

    def __str__(self):
        return f"regex({self.text}, {self.pattern})"


# ---------------------------------------------------------------------------
# Graph patterns
# ---------------------------------------------------------------------------

class PatternNode:
    """Base class for group-graph-pattern elements."""


@dataclass(frozen=True)
class TriplePatternNode(PatternNode):
    """A single triple pattern."""

    pattern: Triple

    def __str__(self):
        return self.pattern.n3()


@dataclass(frozen=True)
class FilterNode(PatternNode):
    """A FILTER constraint attached to the enclosing group."""

    expression: Expression

    def __str__(self):
        return f"FILTER {self.expression}"


@dataclass
class GroupGraphPattern(PatternNode):
    """A ``{ ... }`` group: an ordered list of pattern elements."""

    elements: list = field(default_factory=list)

    def triple_patterns(self):
        """All triple patterns directly inside this group (not nested)."""
        return [e.pattern for e in self.elements if isinstance(e, TriplePatternNode)]

    def filters(self):
        """All FILTER expressions directly inside this group."""
        return [e.expression for e in self.elements if isinstance(e, FilterNode)]

    def __str__(self):
        inner = " ".join(str(e) for e in self.elements)
        return "{ " + inner + " }"


@dataclass(frozen=True)
class OptionalNode(PatternNode):
    """An ``OPTIONAL { ... }`` element."""

    group: GroupGraphPattern

    def __str__(self):
        return f"OPTIONAL {self.group}"


@dataclass(frozen=True)
class UnionNode(PatternNode):
    """A ``{ A } UNION { B } [UNION { C } ...]`` element."""

    branches: tuple

    def __str__(self):
        return " UNION ".join(str(b) for b in self.branches)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Aggregate:
    """An aggregate expression in the SELECT clause, e.g. ``(COUNT(?doc) AS ?n)``.

    ``variable`` is None for ``COUNT(*)``.  Aggregation is the SPARQL
    extension the paper's conclusion anticipates ("aggregation support is
    currently discussed as a possible extension"); the syntax follows what
    later became SPARQL 1.1.
    """

    function: str                   # COUNT, SUM, AVG, MIN, MAX
    variable: Opt[Variable]
    alias: Variable
    distinct: bool = False

    def __str__(self):
        inner = "*" if self.variable is None else str(self.variable)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"({self.function}({inner}) AS {self.alias})"


@dataclass
class SelectQuery:
    """A parsed SELECT query."""

    variables: list                 # list[Variable]; empty means SELECT *
    where: GroupGraphPattern
    distinct: bool = False
    order_by: list = field(default_factory=list)   # list[(Variable, ascending: bool)]
    limit: Opt[int] = None
    offset: int = 0
    prefixes: dict = field(default_factory=dict)
    aggregates: list = field(default_factory=list)  # list[Aggregate]
    group_by: list = field(default_factory=list)    # list[Variable]

    form = "SELECT"

    def projected_variables(self):
        """The projection list; ``None`` signals SELECT * (all in-scope vars)."""
        names = list(self.variables)
        names.extend(aggregate.alias for aggregate in self.aggregates)
        return names if names else None

    def is_aggregate_query(self):
        """True when the query uses GROUP BY or aggregate expressions."""
        return bool(self.aggregates or self.group_by)


@dataclass
class AskQuery:
    """A parsed ASK query."""

    where: GroupGraphPattern
    prefixes: dict = field(default_factory=dict)

    form = "ASK"


# ---------------------------------------------------------------------------
# Updates (SPARQL 1.1 Update)
# ---------------------------------------------------------------------------

class UpdateOperation:
    """Base class for parsed SPARQL Update operations."""

    form = "UPDATE"


@dataclass
class InsertDataUpdate(UpdateOperation):
    """``INSERT DATA { triples }``: ground triples added verbatim."""

    triples: list                   # list[Triple], all ground
    prefixes: dict = field(default_factory=dict)

    form = "INSERT DATA"


@dataclass
class DeleteDataUpdate(UpdateOperation):
    """``DELETE DATA { triples }``: ground triples removed verbatim."""

    triples: list                   # list[Triple], all ground
    prefixes: dict = field(default_factory=dict)

    form = "DELETE DATA"


@dataclass
class ModifyUpdate(UpdateOperation):
    """The pattern-driven forms: ``DELETE/INSERT ... WHERE`` and
    ``DELETE WHERE``.

    ``delete_templates``/``insert_templates`` are triple *templates* (may
    contain variables bound by the WHERE pattern); either may be empty but
    not both.  Per the SPARQL 1.1 Update semantics both template sets are
    instantiated against the solutions of ``where`` evaluated on the
    pre-update state, deletions are applied first, then insertions.
    """

    delete_templates: list = field(default_factory=list)   # list[Triple]
    insert_templates: list = field(default_factory=list)   # list[Triple]
    where: GroupGraphPattern = None
    prefixes: dict = field(default_factory=dict)

    form = "MODIFY"
