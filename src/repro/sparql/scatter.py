"""Scatter-gather execution over a subject-partitioned store.

This is the execution half of PR 8's scale-out layer (the storage half is
:class:`~repro.store.PartitionedStore`).  It extends the id-space evaluator
so that basic graph patterns *scatter* across the store's segments and the
produced id rows *gather* back into one stream:

* **union** — when every pattern of the BGP shares one subject term (see
  :func:`~repro.sparql.planner.scatter_strategy`), the whole BGP evaluates
  independently per segment and the gathered rows are the plain union:
  subject partitioning guarantees each result row is produced by exactly
  one segment, with unchanged multiplicity.
* **broadcast** — any other shape evaluates once against the partitioned
  store's global view: probes with a bound subject route to the owning
  segment (an implicit re-partitioning of the intermediate rows), all other
  accesses chain across every segment.

Union-scattered BGPs run on a **persistent fork-mode process pool**
(:class:`SegmentPool`): one worker per segment, forked once per store
version so the segments are shared copy-on-write exactly like PR 5's
workload clients — the parent ships only the (pickled) BGP node and slot
layout, workers ship back flat id-row lists, and the shared dictionary
makes those rows globally meaningful without re-mapping.  Everything
degrades gracefully: no fork start method, an unpicklable plan, a dead
worker, ``parallel=False``, EXPLAIN instrumentation, or ``K == 1`` all fall
back to sequential in-process per-segment evaluation with identical
results.  Correctness never depends on the pool.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import threading
import weakref
from time import perf_counter

from ..obs import get_registry
from .idspace import NESTED_LOOP, IdSpaceEvaluation
from .planner import SCATTER_UNION, scatter_strategy

# Scatter-layer telemetry (no-ops until the global registry is enabled).
# Every decision that routes a BGP away from the pool is a labelled
# fallback counter, so a serving setup can see *why* it is not scaling.
_SCATTER_BGPS = get_registry().counter(
    "sp2b_scatter_bgps_total",
    "BGPs evaluated against a partitioned store, by executed strategy "
    "(union_pool / union_sequential / broadcast).",
    labels=("strategy",),
)
_SCATTER_FALLBACKS = get_registry().counter(
    "sp2b_scatter_fallbacks_total",
    "Union-scatter evaluations that fell back to the sequential "
    "in-process path, by reason.",
    labels=("reason",),
)
_SEGMENT_TASK_SECONDS = get_registry().histogram(
    "sp2b_scatter_segment_task_seconds",
    "Per-segment task latency of pooled scatters: dispatch to gathered "
    "answer, parent-side.",
    labels=("segment",),
)


class ScatterError(RuntimeError):
    """A pool-side failure; callers fall back to in-process evaluation."""


def _fallback_reason(error):
    """Classify a :class:`ScatterError` for the fallback counter."""
    message = str(error)
    if "not picklable" in message:
        return "unpicklable"
    if "worker died" in message:
        return "worker_died"
    if "closed" in message:
        return "pool_closed"
    return "pool_error"


def pool_available():
    """Whether a segment pool can run here (needs the fork start method)."""
    return "fork" in multiprocessing.get_all_start_methods()


class ScatterGatherEvaluation(IdSpaceEvaluation):
    """Id-space evaluation that scatters BGPs over store segments.

    Instantiated by the evaluator facade whenever the store exposes a
    ``segments`` attribute; for ``K == 1`` every strategy degenerates to
    plain single-store evaluation, so the class is safe as the default for
    any partitioned store.
    """

    def _eval_bgp(self, node, seeds=None):
        segments = getattr(self._store, "segments", ())
        if (
            len(segments) > 1
            and node.patterns
            and seeds is None
            and not self._seed
            and scatter_strategy(node.patterns) == SCATTER_UNION
        ):
            return self._scatter_union(node, segments)
        # Broadcast (and every seeded/pre-bound case): the inherited
        # pipeline against the partitioned store's global view.  Bound-
        # subject probes route to one segment inside the store itself.
        if len(segments) > 1 and node.patterns:
            _SCATTER_BGPS.labels(strategy="broadcast").inc()
        return super()._eval_bgp(node, seeds)

    def _scatter_union(self, node, segments):
        """Evaluate one subject-aligned BGP per segment and union the rows."""
        if not self._observe:
            pool = pool_for(self._store)
            if pool is not None:
                try:
                    rows = pool.scatter(
                        node, self._layout.names, self._strategy,
                        self._reuse_patterns, check=self._check,
                    )
                    _SCATTER_BGPS.labels(strategy="union_pool").inc()
                    return rows
                except ScatterError as error:
                    # A broken pool must not break the query: retire it and
                    # serve this (and future) evaluations in-process.
                    _SCATTER_FALLBACKS.labels(
                        reason=_fallback_reason(error)).inc()
                    disable_pool(self._store)
            else:
                _SCATTER_FALLBACKS.labels(reason="no_pool").inc()
        else:
            _SCATTER_FALLBACKS.labels(reason="explain").inc()
        _SCATTER_BGPS.labels(strategy="union_sequential").inc()
        # Sequential per-segment evaluation.  With EXPLAIN instrumentation
        # on, this is the *required* path: the per-segment evaluations feed
        # the same PlanStep objects, so step.actual accumulates the true
        # per-step row totals across all segments.
        strategy = self._strategy
        reuse = self._reuse_patterns
        observe = self._observe
        deadline = self._deadline
        names = self._layout.names

        def generate():
            for segment in segments:
                evaluation = IdSpaceEvaluation(
                    segment, strategy, reuse_patterns=reuse,
                    observe_plans=observe, deadline=deadline,
                )
                yield from evaluation.solve_bgp(node, names)

        return generate()


# ---------------------------------------------------------------------------
# The persistent per-store segment pool
# ---------------------------------------------------------------------------

#: One pool per live partitioned store, keyed weakly so a collected store
#: releases its (daemonic) workers with it.  Guarded by _POOLS_LOCK; pools
#: are retired when the store's version moves past the one they forked at.
_POOLS = weakref.WeakKeyDictionary()
_POOLS_LOCK = threading.Lock()


def pool_for(store):
    """The persistent :class:`SegmentPool` for ``store``, or None.

    None when parallelism is disabled (``store.parallel`` is False), the
    platform lacks fork, or the store has fewer than two segments.  A pool
    forked from an older store version is closed and rebuilt, so workers
    never serve stale segments.  Safe to call from several threads; pool
    creation is serialized.
    """
    segments = getattr(store, "segments", ())
    parallel = getattr(store, "parallel", None)
    if parallel is None:
        parallel = pool_available()
    if not parallel or len(segments) < 2 or not pool_available():
        return None
    with _POOLS_LOCK:
        pool = _POOLS.get(store)
        if pool is not None and pool.version != getattr(store, "version", 0):
            pool.close()
            pool = None
        if pool is None:
            pool = SegmentPool(segments, version=getattr(store, "version", 0))
            _POOLS[store] = pool
        return pool


def close_pool(store):
    """Shut down the store's pool, if any (idempotent)."""
    with _POOLS_LOCK:
        pool = _POOLS.pop(store, None)
    if pool is not None:
        pool.close()


def disable_pool(store):
    """Retire the store's pool and pin it to in-process evaluation."""
    close_pool(store)
    try:
        store.parallel = False
    except AttributeError:
        pass


def _segment_worker(index, segment, tasks, results):
    """One forked worker: evaluate shipped BGPs against its own segment.

    The segment was inherited copy-on-write at fork time.  Every task is
    answered exactly once (result or error), so the parent never blocks on
    a worker that failed to evaluate; a worker that dies outright is caught
    by the liveness poll in :meth:`SegmentPool.scatter`.
    """
    while True:
        item = tasks.get()
        if item is None:
            return
        task_id, payload = item
        try:
            names, node, strategy, reuse_patterns = pickle.loads(payload)
            evaluation = IdSpaceEvaluation(
                segment, strategy, reuse_patterns=reuse_patterns
            )
            rows = list(evaluation.solve_bgp(node, names))
            results.put((task_id, index, rows, None))
        except Exception as error:  # noqa: BLE001 - relayed to the parent
            try:
                results.put(
                    (task_id, index, None, f"{type(error).__name__}: {error}")
                )
            except Exception:  # noqa: BLE001 - queue itself unusable
                return


class _Gather:
    """Collection state of one in-flight scatter (K expected answers)."""

    __slots__ = ("parts", "errors", "remaining", "event", "lock",
                 "dispatched")

    def __init__(self, expected):
        self.parts = [None] * expected
        self.errors = []
        self.remaining = expected
        self.event = threading.Event()
        self.lock = threading.Lock()
        #: Set right before the tasks are enqueued; per-segment latency is
        #: measured from here to each answer (collector-thread side).
        self.dispatched = None

    def deliver(self, index, rows, error):
        if self.dispatched is not None and error is None:
            _SEGMENT_TASK_SECONDS.labels(segment=str(index)).observe(
                perf_counter() - self.dispatched
            )
        with self.lock:
            if error is not None:
                self.errors.append(error)
                self.event.set()
                return
            self.parts[index] = rows
            self.remaining -= 1
            if self.remaining == 0:
                self.event.set()


class SegmentPool:
    """A persistent fork-mode process pool, one worker per segment.

    Workers are forked once (inheriting the segments copy-on-write) and
    stay resident across queries — the per-query cost is one small pickled
    payload per worker plus the gathered row lists, not a store load.  A
    single collector thread routes results back to the waiting scatter
    calls, so concurrent server threads can have several scatters in
    flight at once.  Workers are daemonic: an exiting parent never hangs
    on the pool.
    """

    def __init__(self, segments, version=0):
        if not pool_available():
            raise ScatterError("fork start method unavailable")
        self.version = version
        context = multiprocessing.get_context("fork")
        self._tasks = [context.SimpleQueue() for _ in segments]
        self._results = context.SimpleQueue()
        self._processes = [
            context.Process(
                target=_segment_worker,
                args=(index, segment, tasks, self._results),
                name=f"segment-{index}",
                daemon=True,
            )
            for index, (segment, tasks) in enumerate(zip(segments, self._tasks))
        ]
        for process in self._processes:
            process.start()
        self._pending = {}
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._closed = False
        self._collector = threading.Thread(
            target=self._collect, name="segment-gather", daemon=True
        )
        self._collector.start()

    @property
    def workers(self):
        return len(self._processes)

    def scatter(self, node, names, strategy=NESTED_LOOP, reuse_patterns=False,
                check=None):
        """Run one BGP on every segment; return the unioned id rows.

        The payload is pickled *here*, synchronously, so an unpicklable
        plan surfaces as :class:`ScatterError` instead of hanging a queue
        feeder.  ``check`` (a deadline callback) is polled while waiting,
        so query timeouts fire in the parent even mid-gather; a worker
        death also surfaces instead of blocking forever.
        """
        try:
            payload = pickle.dumps((tuple(names), node, strategy,
                                    reuse_patterns))
        except Exception as error:  # noqa: BLE001 - fall back, do not hang
            raise ScatterError(f"BGP is not picklable: {error}") from error
        with self._lock:
            if self._closed:
                raise ScatterError("segment pool is closed")
            task_id = next(self._ids)
            gather = _Gather(len(self._tasks))
            self._pending[task_id] = gather
        try:
            gather.dispatched = perf_counter()
            for tasks in self._tasks:
                tasks.put((task_id, payload))
            while not gather.event.wait(0.2):
                if check is not None:
                    check()
                if any(not process.is_alive() for process in self._processes):
                    raise ScatterError("a segment worker died")
        finally:
            with self._lock:
                self._pending.pop(task_id, None)
        if gather.errors:
            raise ScatterError(gather.errors[0])
        rows = []
        for part in gather.parts:
            rows.extend(part)
        return iter(rows)

    def _collect(self):
        """Route worker answers to their waiting scatter (collector thread)."""
        while True:
            try:
                item = self._results.get()
            except (EOFError, OSError):
                return
            if item is None:
                return
            task_id, index, rows, error = item
            with self._lock:
                gather = self._pending.get(task_id)
            if gather is not None:
                gather.deliver(index, rows, error)

    def close(self):
        """Stop workers and the collector (idempotent, best effort)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for tasks in self._tasks:
            try:
                tasks.put(None)
            except Exception:  # noqa: BLE001 - worker already gone
                pass
        for process in self._processes:
            process.join(timeout=2.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        try:
            self._results.put(None)
        except Exception:  # noqa: BLE001 - collector already unblocked
            pass

    def __repr__(self):
        return (
            f"SegmentPool(workers={self.workers}, version={self.version}, "
            f"closed={self._closed})"
        )
