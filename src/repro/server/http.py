"""The SPARQL Protocol HTTP server: a thread worker pool over one engine.

Threading model (see DESIGN.md "The serving subsystem"):

* One :class:`~repro.sparql.engine.SparqlEngine` is shared by every worker.
  Queries never mutate stores, term decoding and statistics are read-only at
  query time, and the engine's prepared-statement cache is lock-protected —
  so sharing needs no further synchronization.  Writable deployments wrap
  the store in an :class:`~repro.store.MvccStore`: ``POST /update`` commits
  through its serialized write transaction while readers keep scanning the
  generation they pinned; ``read_only=True`` rejects updates with 403.
* Accepted connections are dispatched to a bounded
  :class:`~concurrent.futures.ThreadPoolExecutor` (a true worker pool, not
  thread-per-request: a flood of connections queues instead of spawning
  unbounded threads).
* Each request gets a fresh evaluator and a per-request
  :class:`~repro.sparql.cursor.Deadline`; an expired deadline surfaces as
  HTTP 503 with a machine-readable ``timeout`` payload and ``Retry-After``.

Responses are buffered (serialized fully, then sent with Content-Length):
this keeps HTTP/1.1 keep-alive simple and — more importantly — means a
deadline that expires *mid-serialization* still turns into a clean 503
instead of a truncated 200 body.  The cursors stay streaming underneath, so
``LIMIT``-bounded queries never evaluate past their window.

Observability (see DESIGN.md "Observability"): every request is traced
through a :class:`~repro.obs.tracing.QueryTrace` — worker-pool queue wait,
parse/plan (on statement-cache misses), execute, serialize — and reported
once to the attached :class:`~repro.obs.telemetry.ServerTelemetry`, which
drives the Prometheus registry exposed at ``GET /metrics``, the JSON access
log, and the slow-query log.  With the default disabled registry and no
log streams all of that collapses to a handful of no-op calls per request.
"""

from __future__ import annotations

import io
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, HTTPServer
from urllib.parse import urlsplit

from ..obs import QueryTrace, ServerTelemetry
from ..obs.exposition import CONTENT_TYPE as METRICS_CONTENT_TYPE
from ..sparql import planner, serializers
from ..sparql.cursor import Deadline
from ..sparql.errors import (
    ERROR_INTERNAL,
    ERROR_READ_ONLY,
    QueryTimeout,
    SparqlError,
    error_payload,
)
from ..sparql.serializers import CONTENT_TYPES
from .protocol import (
    ENDPOINT_PATH,
    UPDATE_PATH,
    ProtocolError,
    negotiate,
    parse_query_request,
    parse_update_request,
)

#: JSON media type of error payloads and the health endpoint.
JSON_TYPE = "application/json"

#: Readiness/liveness endpoint (used by the CI smoke job to await startup).
HEALTH_PATH = "/health"

#: Prometheus text exposition of the process metrics registry (served only
#: when the attached telemetry enables it, e.g. ``repro serve --metrics``).
METRICS_PATH = "/metrics"


class ThreadPoolHTTPServer(HTTPServer):
    """An HTTPServer whose requests run on a bounded worker pool.

    ``socketserver.ThreadingMixIn`` spawns one thread per connection; under
    heavy traffic that is unbounded.  This server instead submits each
    accepted connection to a fixed-size executor — the serving concurrency
    is exactly ``workers``, and excess connections wait in the executor
    queue (closed-loop clients then see queueing delay, not errors).
    """

    # Restartable listeners: rebinding the same port right after a stop
    # must not fail with EADDRINUSE.
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, server_address, handler_class, workers=4):
        super().__init__(server_address, handler_class)
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="sparql-worker"
        )
        self.started_at = time.monotonic()
        # Worker-pool observability: requests currently on workers (the
        # /health occupancy figure and the in-flight gauge) plus the
        # per-thread queue-wait handoff read by the request handler.
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._worker_state = threading.local()

    def process_request(self, request, client_address):
        self._executor.submit(
            self._handle_one, request, client_address, time.perf_counter()
        )

    def _handle_one(self, request, client_address, submitted):
        # The handler runs on this same worker thread, so the queue wait is
        # handed over through a thread-local (popped by the next request
        # handled here; every handled request pops exactly once).
        self._worker_state.queue_wait = time.perf_counter() - submitted
        telemetry = getattr(self, "telemetry", None)
        with self._inflight_lock:
            self._inflight += 1
            inflight = self._inflight
        if telemetry is not None:
            telemetry.inflight.set(inflight)
        try:
            self.finish_request(request, client_address)
        except Exception:  # noqa: BLE001 - mirror socketserver's error path
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)
            with self._inflight_lock:
                self._inflight -= 1
                inflight = self._inflight
            if telemetry is not None:
                telemetry.inflight.set(inflight)

    def pop_queue_wait(self):
        """The queue wait of the request this worker thread is handling."""
        wait = getattr(self._worker_state, "queue_wait", None)
        self._worker_state.queue_wait = None
        return wait

    @property
    def inflight(self):
        with self._inflight_lock:
            return self._inflight

    @property
    def uptime_seconds(self):
        return time.monotonic() - self.started_at

    def server_close(self):
        super().server_close()
        self._executor.shutdown(wait=False)


class SparqlRequestHandler(BaseHTTPRequestHandler):
    """Speaks the SPARQL Protocol for the engine attached to the server."""

    server_version = "SP2BenchSparql/0.4"
    protocol_version = "HTTP/1.1"
    # Headers and body leave in separate small writes; without TCP_NODELAY,
    # Nagle + the client's delayed ACK turns every response into a ~40ms
    # round trip.  Serving latency is the product here — disable Nagle.
    disable_nagle_algorithm = True

    # -- HTTP entry points -------------------------------------------------

    def do_GET(self):
        path = urlsplit(self.path).path
        if path == HEALTH_PATH:
            self._send_health()
            return
        if path == METRICS_PATH:
            self._send_metrics()
            return
        if path == UPDATE_PATH:
            # Updates change state; they are POST-only by construction.
            error = ProtocolError(
                405, f"method GET not allowed on {UPDATE_PATH} "
                     "(updates must be POSTed)")
            self._send_json(error.status, error.payload())
            return
        if path != ENDPOINT_PATH:
            self._send_not_found(path)
            return
        self._handle_query("GET", body=None)

    def do_POST(self):
        path = urlsplit(self.path).path
        if path == UPDATE_PATH:
            self._handle_update()
            return
        if path != ENDPOINT_PATH:
            self._send_not_found(path)
            return
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length).decode("utf-8", errors="replace")
        self._handle_query("POST", body=body)

    # -- the protocol pipeline ---------------------------------------------

    def _handle_query(self, method, body):
        server = self.server
        trace = QueryTrace(queue_wait=server.pop_queue_wait())
        # Everything the telemetry layer wants to know about this request;
        # filled in as the pipeline progresses, observed exactly once.
        outcome = {
            "status": 500, "query_text": None, "format": None, "form": None,
            "rows": None, "budget_seconds": None,
            "budget_consumed_seconds": None, "cache_hit": None,
            "plan_renderer": None,
        }
        try:
            self._run_query(method, body, trace, outcome)
        finally:
            server.telemetry.observe_request(
                trace, endpoint=ENDPOINT_PATH, method=method, **outcome
            )

    def _run_query(self, method, body, trace, outcome):
        """The protocol pipeline for one query request (traced)."""
        server = self.server
        try:
            query_text, timeout = parse_query_request(
                method,
                self.path,
                content_type=self.headers.get("Content-Type"),
                body=body,
                max_timeout=server.max_timeout,
            )
            format = negotiate(self.headers.get("Accept"))
        except ProtocolError as error:
            outcome["status"] = error.status
            self._send_json(error.status, error.payload())
            return
        outcome["query_text"] = query_text
        outcome["format"] = format
        if timeout is None:
            timeout = server.default_timeout
        outcome["budget_seconds"] = timeout
        try:
            prepared = server.engine.prepare_cached(query_text, trace=trace)
        except SparqlError as error:
            # Covers SparqlSyntaxError (code "parse_error") and any other
            # front-end failure; the payload carries the classification.
            outcome["status"] = 400
            self._send_json(400, error_payload(error))
            return
        # A cache hit skips parse+plan entirely, so those stages only
        # appear in the trace when prepare_cached() actually prepared.
        outcome["cache_hit"] = "parse" not in trace.stages
        outcome["form"] = prepared.form
        outcome["plan_renderer"] = self._plan_renderer(prepared, trace,
                                                       outcome)
        buffer = io.StringIO()
        try:
            deadline = None if timeout is None else Deadline(timeout)
            with trace.span("execute"):
                cursor = prepared.run(deadline=deadline)
                if cursor.form == "ASK":
                    # The boolean was computed eagerly by run(); the cursor
                    # itself is what the ASK serializers format.
                    result = cursor
                else:
                    # Drain under the execute span: responses are buffered
                    # anyway (see the module docstring), so materializing
                    # here just moves the same rows one stage earlier and
                    # cleanly separates evaluation from serialization time.
                    result = list(cursor)
                    outcome["rows"] = len(result)
            with trace.span("serialize"):
                serializers.write(buffer, prepared.variables, result, format)
            if deadline is not None:
                # Preserve the buffered-response guarantee: a budget that
                # ran out during serialization is a clean 503, not a 200
                # that arrives after the deadline passed.
                deadline.check()
                remaining = deadline.remaining()
                if remaining is not None:
                    outcome["budget_consumed_seconds"] = max(
                        timeout - remaining, 0.0
                    )
        except QueryTimeout as error:
            outcome["status"] = 503
            self._send_json(503, error_payload(error),
                            extra_headers={"Retry-After": "1"})
            return
        except SparqlError as error:
            outcome["status"] = 400
            self._send_json(400, error_payload(error))
            return
        except Exception as error:  # noqa: BLE001 - never leak a traceback
            self._send_json(
                500, error_payload(error, code=ERROR_INTERNAL)
            )
            return
        outcome["status"] = 200
        self._send_body(200, buffer.getvalue(), CONTENT_TYPES[format])

    @staticmethod
    def _plan_renderer(prepared, trace, outcome):
        """A lazy EXPLAIN renderer for the slow-query log.

        Only invoked when the request crosses the slow-query threshold;
        renders the prepared plan (estimates; no actuals — the query is
        not re-executed) plus the stage timings gathered so far.
        """
        engine = prepared.engine

        def render():
            report = planner.ExplainReport(
                tree=prepared.tree,
                planner=engine.config.resolved_planner(),
                engine=engine.config.name,
                id_space=getattr(engine.store, "supports_id_access", False),
                result_count=outcome["rows"] or 0,
                elapsed=trace.stages.get("execute", 0.0),
                stages=dict(trace.stages),
            )
            return report.render()

        return render

    def _handle_update(self):
        server = self.server
        trace = QueryTrace(queue_wait=server.pop_queue_wait())
        outcome = {"status": 500, "query_text": None, "extra": None}
        try:
            self._run_update(trace, outcome)
        finally:
            server.telemetry.observe_request(
                trace, endpoint=UPDATE_PATH, method="POST", **outcome
            )

    def _run_update(self, trace, outcome):
        server = self.server
        # Drain the request body even on rejection paths: a keep-alive
        # client's next request would otherwise read leftover body bytes as
        # its request line.
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length).decode("utf-8", errors="replace")
        if getattr(server, "read_only", False):
            # 403, not 405: the resource exists and POST is the right verb,
            # but this deployment refuses state changes.
            outcome["status"] = 403
            self._send_json(403, error_payload(
                PermissionError("server is serving in read-only mode; "
                                "updates are disabled"),
                code=ERROR_READ_ONLY,
            ))
            return
        try:
            update_text = parse_update_request(
                "POST", content_type=self.headers.get("Content-Type"),
                body=body,
            )
        except ProtocolError as error:
            outcome["status"] = error.status
            self._send_json(error.status, error.payload())
            return
        outcome["query_text"] = update_text
        try:
            with trace.span("execute"):
                result = server.engine.update(update_text)
        except SparqlError as error:
            # Parse errors (code "parse_error") and evaluation failures of
            # the WHERE pattern both map to a structured 400.
            outcome["status"] = 400
            self._send_json(400, error_payload(error))
            return
        except Exception as error:  # noqa: BLE001 - never leak a traceback
            self._send_json(500, error_payload(error, code=ERROR_INTERNAL))
            return
        payload = {"ok": True}
        payload.update(result.as_dict())
        outcome["status"] = 200
        outcome["extra"] = result.as_dict()
        self._send_json(200, payload)

    # -- response plumbing -------------------------------------------------

    def _send_not_found(self, path):
        self._send_json(
            404, {"error": {"code": "not_found",
                            "message": f"no resource at {path!r} (endpoints: "
                                       f"{ENDPOINT_PATH}, {UPDATE_PATH}, "
                                       f"{HEALTH_PATH})"}}
        )

    def _send_health(self):
        server = self.server
        inflight = server.inflight
        self._send_json(200, {
            "status": "ok",
            "engine": server.engine.config.name,
            "triples": len(server.engine.store),
            "workers": server.workers,
            "version": getattr(server.engine.store, "version", 0),
            "read_only": getattr(server, "read_only", False),
            "uptime_seconds": round(server.uptime_seconds, 3),
            # This health request itself occupies a worker, so inflight is
            # always >= 1 here; occupancy 1.0 means the pool is saturated.
            "inflight": inflight,
            "occupancy": round(inflight / server.workers, 3),
        })

    def _send_metrics(self):
        telemetry = getattr(self.server, "telemetry", None)
        if telemetry is None or not telemetry.metrics_endpoint:
            self._send_not_found(METRICS_PATH)
            return
        self._send_body(200, telemetry.registry.expose(),
                        METRICS_CONTENT_TYPE)

    def _send_json(self, status, payload, extra_headers=None):
        self._send_body(status, json.dumps(payload), JSON_TYPE,
                        extra_headers=extra_headers)

    def _send_body(self, status, text, content_type, extra_headers=None):
        encoded = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class SparqlServer:
    """Lifecycle wrapper: engine + listener + background serve loop.

    ``port=0`` binds an ephemeral port (the resolved one is in ``.port`` /
    ``.url`` after construction), which is what tests and in-process demos
    use.  ``default_timeout`` applies to requests that carry no ``timeout=``
    parameter; ``max_timeout`` caps client-requested budgets.  The server is
    a context manager: entering starts the background serve thread, leaving
    stops it and closes the listener.
    """

    def __init__(self, engine, host="127.0.0.1", port=0, workers=4,
                 default_timeout=30.0, max_timeout=None, verbose=False,
                 read_only=False, telemetry=None):
        self.engine = engine
        self._httpd = ThreadPoolHTTPServer(
            (host, port), SparqlRequestHandler, workers=workers
        )
        # The handler reaches its collaborators through the server object.
        self._httpd.engine = engine
        self._httpd.default_timeout = default_timeout
        self._httpd.max_timeout = (
            default_timeout if max_timeout is None else max_timeout
        )
        self._httpd.verbose = verbose
        self._httpd.read_only = read_only
        # Telemetry is always attached: with the default (disabled) global
        # registry and no loggers every observation is a cheap no-op, and
        # GET /metrics answers 404 until a telemetry with
        # ``metrics_endpoint=True`` is supplied (``repro serve --metrics``).
        self._httpd.telemetry = (
            telemetry if telemetry is not None else ServerTelemetry()
        )
        self._thread = None

    @property
    def telemetry(self):
        """The attached :class:`~repro.obs.telemetry.ServerTelemetry`."""
        return self._httpd.telemetry

    @property
    def read_only(self):
        """True when POST /update is rejected with 403."""
        return self._httpd.read_only

    @property
    def host(self):
        return self._httpd.server_address[0]

    @property
    def port(self):
        return self._httpd.server_address[1]

    @property
    def url(self):
        """The query endpoint URL."""
        return f"http://{self.host}:{self.port}{ENDPOINT_PATH}"

    @property
    def update_url(self):
        """The update endpoint URL."""
        return f"http://{self.host}:{self.port}{UPDATE_PATH}"

    @property
    def health_url(self):
        return f"http://{self.host}:{self.port}{HEALTH_PATH}"

    @property
    def metrics_url(self):
        return f"http://{self.host}:{self.port}{METRICS_PATH}"

    def start(self):
        """Serve on a background thread; returns immediately."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="sparql-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self):
        """Stop serving and close the listener (idempotent)."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def serve_forever(self):
        """Serve on the calling thread until interrupted (the CLI path)."""
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            self._httpd.server_close()

    def __enter__(self):
        return self.start()

    def __exit__(self, *_exc):
        self.stop()
        return False

    def __repr__(self):
        return (f"SparqlServer(url={self.url!r}, "
                f"engine={self.engine.config.name!r}, "
                f"workers={self._httpd.workers})")
