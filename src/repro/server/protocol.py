"""W3C SPARQL Protocol surface logic, independent of any socket.

Everything here is pure request/response computation, so the protocol rules
are unit-testable without starting a server:

* :func:`parse_query_request` implements the three query transport forms of
  the SPARQL 1.1 Protocol — ``GET`` with a ``query=`` URL parameter,
  ``POST`` with an ``application/x-www-form-urlencoded`` body, and ``POST``
  with a direct ``application/sparql-query`` body — plus the ``timeout=``
  extension parameter (seconds, capped by the server's maximum).
* :func:`negotiate` maps an ``Accept`` header onto one of the four result
  serialization formats (JSON / XML / CSV / TSV), honouring q-values and
  wildcards, with JSON as the default for absent or ``*/*`` preferences.
* :class:`ProtocolError` carries an HTTP status plus the machine-readable
  error payload of :func:`repro.sparql.errors.error_payload`, so transport
  failures and query failures share one body shape.
"""

from __future__ import annotations

from urllib.parse import parse_qs, urlsplit

from ..sparql.errors import ERROR_BAD_REQUEST, error_payload
from ..sparql.serializers import CONTENT_TYPES, FORMATS

#: The endpoint path of the protocol (the W3C spec leaves the path open;
#: ``/sparql`` is the de-facto convention).
ENDPOINT_PATH = "/sparql"

#: The update endpoint path (SPARQL 1.1 Protocol "update operation").
UPDATE_PATH = "/update"

#: Media type of a direct-POST query body.
SPARQL_QUERY_TYPE = "application/sparql-query"

#: Media type of a direct-POST update body.
SPARQL_UPDATE_TYPE = "application/sparql-update"

#: Media type of an HTML-form POST body.
FORM_TYPE = "application/x-www-form-urlencoded"

#: Accept-header media types mapped to serialization formats.  Includes the
#: pragmatic aliases real clients send alongside the four W3C types.
MEDIA_TYPE_FORMATS = {
    "application/sparql-results+json": "json",
    "application/json": "json",
    "application/sparql-results+xml": "xml",
    "application/xml": "xml",
    "text/csv": "csv",
    "text/tab-separated-values": "tsv",
}

#: Server preference order when the client's Accept ranks formats equally.
FORMAT_PREFERENCE = FORMATS  # ("json", "xml", "csv", "tsv")


class ProtocolError(Exception):
    """A protocol-level failure: HTTP status + structured error payload."""

    def __init__(self, status, message, code=ERROR_BAD_REQUEST):
        super().__init__(message)
        self.status = status
        self.code = code

    def payload(self):
        return error_payload(self, code=self.code)


def media_type(content_type):
    """The bare media type of a Content-Type header value (or '')."""
    if not content_type:
        return ""
    return content_type.split(";", 1)[0].strip().lower()


def negotiate(accept_header):
    """Pick the result format for an ``Accept`` header value.

    Returns one of :data:`~repro.sparql.serializers.FORMATS`.  An absent or
    empty header, ``*/*``, and ``application/*``/``text/*`` wildcards all
    resolve through the server preference order (JSON first).  Raises
    :class:`ProtocolError` (406) when the client only accepts media types
    the server cannot produce.
    """
    if not accept_header or not accept_header.strip():
        return FORMAT_PREFERENCE[0]
    best_format = None
    best_rank = None
    for index, clause in enumerate(accept_header.split(",")):
        parts = [part.strip() for part in clause.split(";")]
        offered = parts[0].lower()
        if not offered:
            continue
        quality = 1.0
        for parameter in parts[1:]:
            if parameter.startswith("q="):
                try:
                    quality = float(parameter[2:])
                except ValueError:
                    quality = 0.0
        if quality <= 0:
            continue
        if offered in MEDIA_TYPE_FORMATS:
            candidates = (MEDIA_TYPE_FORMATS[offered],)
            specificity = 0
        elif offered == "text/*":
            candidates = ("csv", "tsv")
            specificity = 1
        elif offered == "application/*":
            candidates = FORMAT_PREFERENCE
            specificity = 1
        elif offered == "*/*":
            candidates = FORMAT_PREFERENCE
            specificity = 2
        else:
            continue
        for candidate in candidates:
            # Higher q wins; at equal q a specific media type beats a
            # wildcard range (RFC 7231 §5.3.2 precedence), then ties break
            # on Accept-list order and finally on the server preference
            # order (the candidate tuple is pre-ordered).
            rank = (-quality, specificity, index,
                    FORMAT_PREFERENCE.index(candidate))
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_format = candidate
            break
    if best_format is None:
        raise ProtocolError(
            406,
            f"no supported result format in Accept: {accept_header!r} "
            f"(supported: {', '.join(CONTENT_TYPES.values())})",
        )
    return best_format


def _single_parameter(parameters, name):
    values = parameters.get(name, [])
    if len(values) > 1:
        raise ProtocolError(400, f"multiple {name!r} parameters given")
    return values[0] if values else None


def _parse_timeout(raw, max_timeout):
    if raw is None:
        return None
    try:
        timeout = float(raw)
    except ValueError:
        raise ProtocolError(400, f"malformed timeout parameter {raw!r}") from None
    if timeout < 0:
        raise ProtocolError(400, "timeout parameter must be non-negative")
    if max_timeout is not None:
        timeout = min(timeout, max_timeout)
    return timeout


def parse_query_request(method, target, content_type=None, body=None,
                        max_timeout=None):
    """Extract ``(query_text, timeout)`` from one protocol request.

    ``target`` is the raw request target (path plus query string); ``body``
    is the decoded request body for POST.  Raises :class:`ProtocolError`
    with the proper status for every malformed transport: unknown method
    (405), missing/duplicate ``query`` parameter (400), unsupported POST
    Content-Type (415), malformed ``timeout`` (400).  The query text itself
    is *not* validated here — parse errors surface when the engine prepares
    it, and map to 400 at the handler layer.
    """
    url = urlsplit(target)
    url_parameters = parse_qs(url.query, keep_blank_values=True)
    timeout_raw = _single_parameter(url_parameters, "timeout")

    if method == "GET":
        query = _single_parameter(url_parameters, "query")
        if query is None:
            raise ProtocolError(
                400, "missing query parameter (GET /sparql?query=...)"
            )
    elif method == "POST":
        kind = media_type(content_type)
        if kind == SPARQL_QUERY_TYPE:
            query = body or ""
        elif kind == FORM_TYPE or kind == "":
            form_parameters = parse_qs(body or "", keep_blank_values=True)
            query = _single_parameter(form_parameters, "query")
            if query is None:
                raise ProtocolError(
                    400, "missing query parameter in form-encoded POST body"
                )
            if timeout_raw is None:
                timeout_raw = _single_parameter(form_parameters, "timeout")
        else:
            raise ProtocolError(
                415,
                f"unsupported POST Content-Type {content_type!r} (expected "
                f"{SPARQL_QUERY_TYPE} or {FORM_TYPE})",
            )
    else:
        raise ProtocolError(405, f"method {method} not allowed on {ENDPOINT_PATH}")

    if not query.strip():
        raise ProtocolError(400, "empty query text")
    return query, _parse_timeout(timeout_raw, max_timeout)


def parse_update_request(method, content_type=None, body=None):
    """Extract the update text from one SPARQL Protocol update request.

    The update operation has exactly two transport forms, both POST: a
    direct ``application/sparql-update`` body, and an
    ``application/x-www-form-urlencoded`` body with an ``update=``
    parameter.  Raises :class:`ProtocolError` for every malformed
    transport: non-POST method (405), unsupported Content-Type (415),
    missing/duplicate/empty ``update`` parameter (400).
    """
    if method != "POST":
        raise ProtocolError(405, f"method {method} not allowed on {UPDATE_PATH} "
                                 "(updates must be POSTed)")
    kind = media_type(content_type)
    if kind == SPARQL_UPDATE_TYPE:
        update = body or ""
    elif kind == FORM_TYPE or kind == "":
        form_parameters = parse_qs(body or "", keep_blank_values=True)
        update = _single_parameter(form_parameters, "update")
        if update is None:
            raise ProtocolError(
                400, "missing update parameter in form-encoded POST body"
            )
    else:
        raise ProtocolError(
            415,
            f"unsupported POST Content-Type {content_type!r} (expected "
            f"{SPARQL_UPDATE_TYPE} or {FORM_TYPE})",
        )
    if not update.strip():
        raise ProtocolError(400, "empty update text")
    return update
