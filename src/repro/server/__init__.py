"""Serving subsystem: the W3C SPARQL Protocol over HTTP.

``GET/POST /sparql`` with content negotiation onto the four W3C result
formats, ``POST /update`` for SPARQL 1.1 Update (rejected with 403 in
read-only deployments), per-request deadlines, structured error payloads,
and a bounded thread worker pool over one shared engine.  See DESIGN.md
("The serving subsystem") for the threading model.
"""

from .http import (
    HEALTH_PATH,
    SparqlRequestHandler,
    SparqlServer,
    ThreadPoolHTTPServer,
)
from .protocol import (
    ENDPOINT_PATH,
    FORM_TYPE,
    MEDIA_TYPE_FORMATS,
    SPARQL_QUERY_TYPE,
    SPARQL_UPDATE_TYPE,
    UPDATE_PATH,
    ProtocolError,
    negotiate,
    parse_query_request,
    parse_update_request,
)

__all__ = [
    "SparqlServer",
    "SparqlRequestHandler",
    "ThreadPoolHTTPServer",
    "ProtocolError",
    "negotiate",
    "parse_query_request",
    "parse_update_request",
    "ENDPOINT_PATH",
    "UPDATE_PATH",
    "HEALTH_PATH",
    "SPARQL_QUERY_TYPE",
    "SPARQL_UPDATE_TYPE",
    "FORM_TYPE",
    "MEDIA_TYPE_FORMATS",
]
