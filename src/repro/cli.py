"""Command-line entry points: generate data, run queries, run the benchmark.

Console scripts are installed via ``pyproject.toml``:

``repro``
    The dispatching entry point: ``repro {generate|query|bench} ...``.
    ``repro query --explain`` prints the physical query plan with estimated
    and actual per-step cardinalities.
``sp2bench-generate``
    Generate a DBLP-like document and write it as N-Triples.
``sp2bench-query``
    Run one benchmark query (or an ad-hoc query file) against a document.
``sp2bench-bench``
    Run the full benchmark harness and print the paper's result tables.
"""

from __future__ import annotations

import argparse
import sys
import time

from .bench.harness import DEFAULT_DOCUMENT_SIZES, ExperimentConfig, BenchmarkHarness
from .bench import reporting
from .generator.config import GeneratorConfig
from .generator.generator import DblpGenerator
from .queries.catalog import ALL_QUERIES, get_query
from .rdf.ntriples import parse_file
from .sparql.engine import (
    ENGINE_PRESETS,
    NATIVE_COST,
    NATIVE_OPTIMIZED,
    SparqlEngine,
)

#: Engine configurations selectable from the command line: the paper's four
#: presets plus the cost-based planner profile.
CLI_ENGINE_CONFIGS = ENGINE_PRESETS + (NATIVE_COST,)


def generate_main(argv=None):
    """Entry point of ``sp2bench-generate``."""
    parser = argparse.ArgumentParser(description="Generate SP2Bench DBLP-like RDF data.")
    parser.add_argument("output", help="output N-Triples file path")
    parser.add_argument("--triples", type=int, default=10_000,
                        help="triple count limit (default: 10000)")
    parser.add_argument("--end-year", type=int, default=None,
                        help="simulate up to this year instead of a triple limit")
    parser.add_argument("--seed", type=int, default=GeneratorConfig.seed,
                        help="random seed (default: %(default)s)")
    args = parser.parse_args(argv)

    config = GeneratorConfig(
        triple_limit=None if args.end_year else args.triples,
        end_year=args.end_year,
        seed=args.seed,
    )
    generator = DblpGenerator(config)
    start = time.perf_counter()
    count = generator.write(args.output)
    elapsed = time.perf_counter() - start
    stats = generator.statistics.as_dict()
    print(f"wrote {count} triples to {args.output} in {elapsed:.2f}s "
          f"(data up to {stats['data_up_to_year']})")
    return 0


def query_main(argv=None):
    """Entry point of ``sp2bench-query``."""
    parser = argparse.ArgumentParser(description="Run SP2Bench queries on an RDF document.")
    parser.add_argument("document", help="N-Triples file to query")
    parser.add_argument("--query", default="Q1",
                        help="benchmark query id (Q1..Q12c) or path to a SPARQL file")
    parser.add_argument("--engine", default=NATIVE_OPTIMIZED.name,
                        choices=[config.name for config in CLI_ENGINE_CONFIGS],
                        help="engine preset to use")
    parser.add_argument("--limit", type=int, default=20,
                        help="maximum number of result rows to print")
    parser.add_argument("--explain", action="store_true",
                        help="print the physical query plan with estimated "
                             "and actual per-step cardinalities")
    args = parser.parse_args(argv)

    graph = parse_file(args.document)
    config = next(c for c in CLI_ENGINE_CONFIGS if c.name == args.engine)
    engine = SparqlEngine.from_graph(graph, config)

    try:
        query_text = get_query(args.query).text
        label = args.query
    except KeyError:
        with open(args.query, "r", encoding="utf-8") as handle:
            query_text = handle.read()
        label = args.query

    if args.explain:
        report = engine.explain(query_text)
        print(f"{label}:")
        print(report.render())
        return 0

    start = time.perf_counter()
    result = engine.query(query_text)
    elapsed = time.perf_counter() - start
    if result.form == "ASK":
        print(f"{label}: {'yes' if result else 'no'} ({elapsed:.3f}s)")
    else:
        print(f"{label}: {len(result)} results ({elapsed:.3f}s)")
        for row in result.rows()[: args.limit]:
            print("  " + "\t".join("-" if value is None else value.n3() for value in row))
    return 0


def bench_main(argv=None):
    """Entry point of ``sp2bench-bench``."""
    parser = argparse.ArgumentParser(description="Run the full SP2Bench benchmark harness.")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_DOCUMENT_SIZES),
                        help="document sizes in triples (default: %(default)s)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-query timeout in seconds (default: 30)")
    parser.add_argument("--queries", nargs="+", default=None,
                        help="subset of query ids to run (default: all 17)")
    parser.add_argument("--runs", type=int, default=1, help="runs per query (default: 1)")
    args = parser.parse_args(argv)

    queries = ALL_QUERIES if args.queries is None else tuple(
        get_query(identifier) for identifier in args.queries
    )
    config = ExperimentConfig(
        document_sizes=tuple(args.sizes),
        queries=queries,
        timeout=args.timeout,
        runs=args.runs,
    )
    report = BenchmarkHarness(config).run()
    print(reporting.full_report(report))
    return 0


def main(argv=None):
    """Dispatching entry point (``repro <command>`` / ``python -m repro.cli``)."""
    commands = {"generate": generate_main, "query": query_main, "bench": bench_main}
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in commands:
        print("usage: repro {generate|query|bench} [options]", file=sys.stderr)
        return 2
    return commands[argv[0]](argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
