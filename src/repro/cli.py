"""Command-line entry points: generate, build, query, serve, loadtest, bench.

Console scripts are installed via ``pyproject.toml``:

``repro``
    The dispatching entry point:
    ``repro {generate|build|query|serve|loadtest|bench|cache} ...``.
    ``repro query --explain`` prints the physical query plan with estimated
    and actual per-step cardinalities; ``repro query`` also accepts ``.sp2b``
    snapshot paths, which skip parsing and store building entirely.  Queries
    run through the prepared/streaming engine API: ``--repeat N`` amortizes
    parse+plan across executions, ``--limit N`` stops evaluation after N
    rows, and ``--format {table,json,xml,csv,tsv}`` selects the rendering
    (json/xml/csv/tsv are the W3C SPARQL-results serializations).  Query
    failures print the machine-readable error payload (the same JSON shape
    the server returns) to stderr.
    ``repro serve`` exposes a document or snapshot as a W3C SPARQL Protocol
    endpoint (``GET/POST /sparql``) on a thread worker pool; ``repro
    loadtest`` replays a weighted closed-loop query mix against a running
    endpoint (``--url``) or in-process against a document, reporting
    sustained QpS and p50/p95/p99 latency.  ``repro serve --metrics``
    enables the telemetry registry and ``GET /metrics`` Prometheus
    exposition (``--access-log``/``--slow-query-ms`` add JSON request and
    slow-query logs); ``repro loadtest --scrape-metrics`` diffs the
    server's metrics across the run.  ``repro query --profile`` prints the
    traced plan with per-stage and per-step timings.
    ``repro build`` fills the dataset cache; ``repro cache {list,clear,key}``
    administers it (``key`` prints the composite key CI uses for
    ``actions/cache``).
``sp2bench-generate``
    Generate a DBLP-like document and write it as N-Triples
    (``--save-snapshot`` additionally writes the built ``.sp2b`` store).
``sp2bench-query``
    Run one benchmark query (or an ad-hoc query file) against a document.
``sp2bench-bench``
    Run the full benchmark harness and print the paper's result tables;
    documents resolve through the dataset cache unless ``--no-cache``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .bench.harness import DEFAULT_DOCUMENT_SIZES, ExperimentConfig, BenchmarkHarness
from .bench import reporting
from .bench.workload import (
    WorkloadMix,
    process_mode_available,
    run_engine_workload,
    run_http_workload,
    run_mixed_engine_workload,
    run_mixed_http_workload,
)
from .cache import DatasetCache, combined_cache_key, dataset_key, default_cache_dir
from .generator.config import GeneratorConfig
from .generator.generator import DblpGenerator
from .queries.catalog import ALL_QUERIES, get_query
from .rdf.ntriples import load_into, serialize_triple
from .sparql.engine import (
    ENGINE_PRESETS,
    NATIVE_COST,
    NATIVE_OPTIMIZED,
    SparqlEngine,
)
from .sparql.errors import SparqlError, error_payload
from .sparql.serializers import FORMATS as RESULT_FORMATS
from .store import (
    IndexedStore,
    PartitionedStore,
    is_partition_manifest,
    load_snapshot,
)

#: Engine configurations selectable from the command line: the paper's four
#: presets plus the cost-based planner profile.
CLI_ENGINE_CONFIGS = ENGINE_PRESETS + (NATIVE_COST,)

#: File suffix identifying store snapshots on the command line.
SNAPSHOT_SUFFIX = ".sp2b"


def generate_main(argv=None):
    """Entry point of ``sp2bench-generate``."""
    parser = argparse.ArgumentParser(description="Generate SP2Bench DBLP-like RDF data.")
    parser.add_argument("output", help="output N-Triples file path")
    parser.add_argument("--triples", type=int, default=10_000,
                        help="triple count limit (default: 10000)")
    parser.add_argument("--end-year", type=int, default=None,
                        help="simulate up to this year instead of a triple limit")
    parser.add_argument("--seed", type=int, default=GeneratorConfig.seed,
                        help="random seed (default: %(default)s)")
    parser.add_argument("--save-snapshot", action="store_true",
                        help="also write a <output stem>.sp2b store snapshot "
                             "next to the document so later `repro query` "
                             "runs skip parsing and loading")
    args = parser.parse_args(argv)

    config = GeneratorConfig(
        triple_limit=None if args.end_year else args.triples,
        end_year=args.end_year,
        seed=args.seed,
    )
    generator = DblpGenerator(config)
    start = time.perf_counter()
    if args.save_snapshot:
        # Tee one generator pass into both the document and a built store.
        store = IndexedStore()
        count = 0
        with open(args.output, "w", encoding="utf-8") as handle:
            for triple in generator.triples():
                handle.write(serialize_triple(triple))
                handle.write("\n")
                store.add(triple)
                count += 1
    else:
        count = generator.write(args.output)
    elapsed = time.perf_counter() - start
    stats = generator.statistics.as_dict()
    print(f"wrote {count} triples to {args.output} in {elapsed:.2f}s "
          f"(data up to {stats['data_up_to_year']})")
    if args.save_snapshot:
        snapshot_path = _snapshot_path_for(args.output)
        store.save(snapshot_path, metadata={"statistics": stats})
        print(f"saved store snapshot to {snapshot_path}")
    return 0


def _snapshot_path_for(output):
    return str(Path(output).with_suffix(SNAPSHOT_SUFFIX))


def build_main(argv=None):
    """Entry point of ``repro build``: fill the dataset cache."""
    parser = argparse.ArgumentParser(
        description="Build dataset snapshots into the cache (generate once, "
                    "load everywhere)."
    )
    parser.add_argument("--triples", type=int, nargs="+",
                        default=list(DEFAULT_DOCUMENT_SIZES),
                        help="document sizes to build (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=GeneratorConfig.seed,
                        help="generator seed (default: %(default)s)")
    parser.add_argument("--store", choices=("indexed", "memory"), default="indexed",
                        help="store family to snapshot (default: indexed)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: $SP2B_CACHE_DIR or "
                             "~/.cache/sp2bench)")
    parser.add_argument("--force", action="store_true",
                        help="rebuild entries even when already cached")
    args = parser.parse_args(argv)

    cache = DatasetCache(args.cache_dir)
    for size in args.triples:
        config = GeneratorConfig(triple_limit=size, seed=args.seed)
        if args.force:
            cache.remove(config, args.store)
        resolved = cache.resolve(config, args.store)
        verb = "cached" if resolved.hit else "built "
        print(f"{verb} {size:>9} triples in {resolved.elapsed:6.2f}s -> {resolved.path}")
    return 0


def cache_main(argv=None):
    """Entry point of ``repro cache``: list/clear/key the dataset cache."""
    parser = argparse.ArgumentParser(description="Administer the dataset cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list cached dataset snapshots")
    clear_parser = sub.add_parser("clear", help="delete all cached snapshots")
    key_parser = sub.add_parser(
        "key", help="print the composite cache key for a set of document sizes "
                    "(used to key the CI actions/cache step)"
    )
    prune_parser = sub.add_parser(
        "prune", help="delete snapshots not matching the given sizes (CI runs "
                      "this so restore-keys fallbacks cannot grow the saved "
                      "cache without bound)"
    )
    for sub_parser in (list_parser, clear_parser, key_parser, prune_parser):
        sub_parser.add_argument("--cache-dir", default=None,
                                help="cache directory (default: $SP2B_CACHE_DIR "
                                     "or ~/.cache/sp2bench)")
    for sub_parser in (key_parser, prune_parser):
        sub_parser.add_argument("--sizes",
                                default=",".join(map(str, DEFAULT_DOCUMENT_SIZES)),
                                help="comma-separated document sizes "
                                     "(default: %(default)s)")
        sub_parser.add_argument("--seed", type=int, default=GeneratorConfig.seed,
                                help="generator seed (default: %(default)s)")
        sub_parser.add_argument("--store", choices=("indexed", "memory"),
                                default="indexed",
                                help="store family (default: indexed)")
    args = parser.parse_args(argv)

    cache = DatasetCache(args.cache_dir)
    if args.command == "list":
        entries = cache.entries()
        if not entries:
            print(f"cache {cache.root} is empty")
            return 0
        total = 0
        for entry in entries:
            triples = entry.metadata.get("triples", "?")
            total += entry.size_bytes
            print(f"  {entry.key:<40} {triples:>9} triples "
                  f"{entry.size_bytes / 1e6:8.2f} MB")
        print(f"{len(entries)} snapshot(s), {total / 1e6:.2f} MB in {cache.root}")
        return 0
    if args.command == "clear":
        removed = cache.clear()
        print(f"removed {removed} snapshot(s) from {cache.root}")
        return 0
    sizes = [int(size) for size in str(args.sizes).replace(",", " ").split()]
    configs = [GeneratorConfig(triple_limit=size, seed=args.seed) for size in sizes]
    if args.command == "prune":
        keep = [dataset_key(config, args.store) for config in configs]
        removed = cache.prune(keep)
        print(f"pruned {removed} snapshot(s) from {cache.root} "
              f"(kept up to {len(keep)})")
        return 0
    # args.command == "key"
    print(combined_cache_key(configs, args.store))
    return 0


#: Rows the table format prints when no ``--limit`` bounds the query.
TABLE_PREVIEW_ROWS = 20


def _build_engine(document, engine_name, shards=1):
    """Load a document (N-Triples or ``.sp2b`` snapshot) into an engine.

    With ``shards > 1`` the loaded store is hash-partitioned by subject id
    into a :class:`PartitionedStore`, enabling scatter-gather evaluation;
    that requires an id-space (``indexed``) engine preset.  A ``.sp2b``
    path holding a partition manifest loads as a partitioned store
    directly (and is re-partitioned only if ``shards`` disagrees).
    """
    config = next(c for c in CLI_ENGINE_CONFIGS if c.name == engine_name)
    if shards > 1 and config.store_type != "indexed":
        raise SystemExit(
            f"--shards requires an id-space engine preset; "
            f"{engine_name!r} evaluates over terms, not ids"
        )
    if document.endswith(SNAPSHOT_SUFFIX):
        # The fast path: rebuild the store from its snapshot — no parsing,
        # no per-triple loading.
        if is_partition_manifest(document):
            store = PartitionedStore.load(document)
        else:
            store = load_snapshot(document)
        if shards > 1 and getattr(store, "shard_count", 1) != shards:
            store = PartitionedStore.from_store(store, shards)
        return SparqlEngine.from_store(store, config)
    engine = SparqlEngine(config)
    load_into(engine.store, document)
    if shards > 1:
        engine.store = PartitionedStore.from_store(engine.store, shards)
    return engine


def _print_error_payload(error):
    """Print the machine-readable error payload (shared with the server)."""
    json.dump(error_payload(error), sys.stderr)
    sys.stderr.write("\n")


def query_main(argv=None):
    """Entry point of ``sp2bench-query``.

    Queries execute through the prepared/streaming path: the query is
    prepared once, ``--repeat`` re-runs the prepared plan (reporting per-run
    and amortized times), ``--limit`` is pushed into the cursor so bounded
    queries stop evaluating early, and ``--format`` selects the table
    rendering or a W3C SPARQL-results serialization (json/xml/csv/tsv)
    written to stdout (timings then go to stderr, keeping stdout a valid
    document).  Failures (parse errors, timeouts) print the structured
    error payload — the same JSON shape the SPARQL Protocol server returns
    — to stderr, never a traceback.
    """
    parser = argparse.ArgumentParser(description="Run SP2Bench queries on an RDF document.")
    parser.add_argument("document",
                        help="N-Triples file (or .sp2b store snapshot) to query")
    parser.add_argument("--query", default="Q1",
                        help="benchmark query id (Q1..Q12c) or path to a SPARQL file")
    parser.add_argument("--engine", default=NATIVE_OPTIMIZED.name,
                        choices=[config.name for config in CLI_ENGINE_CONFIGS],
                        help="engine preset to use")
    parser.add_argument("--format", choices=("table",) + RESULT_FORMATS,
                        default="table",
                        help="output format: human-readable table or a W3C "
                             "SPARQL-results serialization (default: table)")
    parser.add_argument("--limit", type=int, default=None,
                        help="LIMIT pushed into evaluation: the query stops "
                             "producing after N rows (default: unbounded; the "
                             f"table format then previews {TABLE_PREVIEW_ROWS} rows)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="execute the prepared query N times and report "
                             "per-run and amortized times (default: 1)")
    parser.add_argument("--explain", action="store_true",
                        help="print the physical query plan with estimated "
                             "and actual per-step cardinalities")
    parser.add_argument("--profile", action="store_true",
                        help="execute once under per-stage tracing and print "
                             "the timed plan: parse/plan/execute stage "
                             "timings plus per-step time= self-times "
                             "alongside the EXPLAIN cardinalities")
    parser.add_argument("--shards", type=int, default=1,
                        help="hash-partition the store into K segments by "
                             "subject id and evaluate with scatter-gather "
                             "(default: 1 = single store)")
    args = parser.parse_args(argv)

    engine = _build_engine(args.document, args.engine, shards=args.shards)

    try:
        query_text = get_query(args.query).text
        label = args.query
    except KeyError:
        with open(args.query, "r", encoding="utf-8") as handle:
            query_text = handle.read()
        label = args.query

    try:
        if args.explain or args.profile:
            # Both flags share the traced-explain path: the report carries
            # per-step est/actual cardinalities, per-step time= self-times,
            # and the parse/plan/execute stage line.
            report = engine.explain(query_text)
            print(f"{label}:")
            print(report.render())
            return 0

        repeat = max(args.repeat, 1)
        prepare_start = time.perf_counter()
        prepared = engine.prepare(query_text)
        prepare_time = time.perf_counter() - prepare_start

        run_times = []
        for index in range(repeat):
            final_run = index == repeat - 1
            start = time.perf_counter()
            cursor = prepared.run(limit=args.limit)
            if not final_run:
                # Warm repetition: drain for timing, print nothing.
                for _binding in cursor:
                    pass
                run_times.append(time.perf_counter() - start)
                continue
            if args.format == "table":
                _print_table(label, cursor, args.limit, start)
            else:
                cursor.write(sys.stdout, args.format)
                if args.format in ("json", "xml"):
                    sys.stdout.write("\n")
            run_times.append(time.perf_counter() - start)
    except SparqlError as error:
        # Parse errors, timeouts, evaluation failures: the structured
        # payload (shared with the server's HTTP responses), not a
        # traceback.
        _print_error_payload(error)
        return 1

    timing_out = sys.stdout if args.format == "table" else sys.stderr
    if repeat > 1:
        amortized = (prepare_time + sum(run_times)) / repeat
        print(f"{label}: prepare {prepare_time * 1e3:.2f}ms; "
              f"{repeat} runs: first {run_times[0] * 1e3:.2f}ms, "
              f"min {min(run_times) * 1e3:.2f}ms, "
              f"mean {sum(run_times) / repeat * 1e3:.2f}ms; "
              f"amortized {amortized * 1e3:.2f}ms/run",
              file=timing_out)
    elif args.format != "table":
        print(f"{label}: prepare {prepare_time * 1e3:.2f}ms, "
              f"run {run_times[0] * 1e3:.2f}ms", file=timing_out)
    return 0


def _print_table(label, cursor, limit, start):
    """Render one cursor in the human-readable table format.

    The table is a summary view, so the cursor is drained first (the
    count-and-time header line comes before the rows); the streaming output
    paths are the W3C serialization formats.
    """
    if cursor.form == "ASK":
        elapsed = time.perf_counter() - start
        print(f"{label}: {'yes' if cursor else 'no'} ({elapsed:.3f}s)")
        return
    preview = TABLE_PREVIEW_ROWS if limit is None else None
    shown = []
    count = 0
    for row in cursor.rows():
        count += 1
        if preview is None or len(shown) < preview:
            shown.append(row)
    elapsed = time.perf_counter() - start
    print(f"{label}: {count} results ({elapsed:.3f}s)")
    for row in shown:
        print("  " + "\t".join("-" if value is None else value.n3() for value in row))


def serve_main(argv=None):
    """Entry point of ``repro serve``: the SPARQL Protocol endpoint.

    Loads a document (or, much faster, a ``.sp2b`` snapshot) once and
    serves ``GET/POST /sparql`` plus ``POST /update`` on a thread worker
    pool until interrupted.  By default the store is wrapped in an MVCC
    facade so updates commit as atomically-published snapshots while
    readers keep their pinned generation; ``--read-only`` rejects updates
    with 403 instead.  ``/health`` reports readiness, uptime, and worker
    occupancy.  ``--metrics`` enables the in-process registry and exposes
    it at ``GET /metrics``; ``--access-log`` and ``--slow-query-ms`` add
    structured JSON request/slow-query logs.
    """
    parser = argparse.ArgumentParser(
        description="Serve a document over the W3C SPARQL Protocol."
    )
    parser.add_argument("document",
                        help="N-Triples file (or .sp2b store snapshot) to serve")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8008,
                        help="port to bind; 0 picks an ephemeral port "
                             "(default: %(default)s)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker threads executing queries (default: 4)")
    parser.add_argument("--engine", default=NATIVE_COST.name,
                        choices=[config.name for config in CLI_ENGINE_CONFIGS],
                        help="engine preset to serve with (default: native-cost)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="default per-request deadline in seconds; "
                             "requests may lower it with ?timeout= "
                             "(default: 30)")
    parser.add_argument("--max-timeout", type=float, default=None,
                        help="cap on client-requested timeouts "
                             "(default: the --timeout value)")
    parser.add_argument("--read-only", action="store_true",
                        help="reject POST /update with 403 instead of "
                             "serving writes")
    parser.add_argument("--shards", type=int, default=1,
                        help="hash-partition the store into K segments by "
                             "subject id and serve with scatter-gather "
                             "evaluation; implies --read-only (default: 1)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request access logging")
    parser.add_argument("--metrics", action="store_true",
                        help="enable the metrics registry and expose "
                             "Prometheus text exposition at GET /metrics")
    parser.add_argument("--access-log", default=None, metavar="PATH",
                        help="write one JSON line per request (query hash, "
                             "status, stage timings, budget consumed) to "
                             "PATH; '-' means stderr")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        metavar="MS",
                        help="log queries slower than MS milliseconds with "
                             "their full text, EXPLAIN plan, and stage "
                             "breakdown (to the access log, else stderr)")
    args = parser.parse_args(argv)

    from .server import SparqlServer
    from .store import MvccStore

    start = time.perf_counter()
    engine = _build_engine(args.document, args.engine, shards=args.shards)
    sharded = getattr(engine.store, "shard_count", 1) > 1
    read_only = args.read_only
    if sharded and not read_only:
        # Partitioned stores have no MVCC generation chain yet; scale-out
        # serving is read-only scale-out.
        print("partitioned store: forcing --read-only "
              "(sharded serving does not accept updates)")
        read_only = True
    if not read_only:
        # Writable serving: snapshot-isolate the store so updates publish
        # atomically under concurrent readers.
        engine.store = MvccStore(engine.store)
    if sharded:
        # Warm the scatter pool now, before any server thread exists: the
        # segment workers must fork from a single-threaded parent.
        from .sparql.scatter import pool_for

        pool = pool_for(engine.store)
        if pool is not None:
            print(f"scatter-gather: {pool.workers} segment workers forked")
        else:
            print("scatter-gather: evaluating segments in-process "
                  "(no fork support)")
    elapsed = time.perf_counter() - start
    telemetry = None
    if args.metrics or args.access_log or args.slow_query_ms is not None:
        from .obs import ServerTelemetry, enable_metrics
        from .obs.logs import open_log_stream

        if args.metrics:
            enable_metrics()
        telemetry = ServerTelemetry(
            access_logger=open_log_stream(args.access_log)
            if args.access_log else None,
            slow_query_seconds=args.slow_query_ms / 1e3
            if args.slow_query_ms is not None else None,
            metrics_endpoint=args.metrics,
        )
    server = SparqlServer(
        engine,
        host=args.host,
        port=args.port,
        workers=args.workers,
        default_timeout=args.timeout,
        max_timeout=args.max_timeout,
        verbose=not args.quiet,
        read_only=read_only,
        telemetry=telemetry,
    )
    print(f"loaded {len(engine.store)} triples in {elapsed:.2f}s "
          f"({engine.config.name} engine"
          + (f", {engine.store.shard_count} shards)" if sharded else ")"))
    mode = "read-only" if read_only else "read/write"
    print(f"serving SPARQL Protocol ({mode}) at {server.url} "
          f"({args.workers} workers, {args.timeout:g}s default timeout); "
          f"updates at {server.update_url}; health at {server.health_url}",
          flush=True)
    if args.metrics:
        print(f"metrics at {server.metrics_url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        if telemetry is not None:
            telemetry.close()
    return 0


def _parse_mix(spec, query_ids):
    """Build the workload mix from ``--mix Q1=4,Q3a=2`` / ``--queries``."""
    if spec:
        weights = {}
        for part in spec.replace(",", " ").split():
            identifier, _equals, weight = part.partition("=")
            weights[identifier] = float(weight) if weight else 1.0
        return WorkloadMix.from_catalog(weights)
    if query_ids:
        return WorkloadMix.uniform(query_ids)
    return WorkloadMix.from_catalog()


def loadtest_main(argv=None):
    """Entry point of ``repro loadtest``: closed-loop multi-client load.

    Replays a weighted mix of catalog queries from N concurrent clients —
    over HTTP against a running endpoint (``--url``), or in-process against
    a document/snapshot — and reports sustained QpS with p50/p95/p99
    latency per query and overall.
    """
    parser = argparse.ArgumentParser(
        description="Run a closed-loop multi-client SPARQL workload."
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--url",
                        help="SPARQL Protocol endpoint to load "
                             "(e.g. http://127.0.0.1:8008/sparql)")
    target.add_argument("--document",
                        help="N-Triples file or .sp2b snapshot to load-test "
                             "in-process (no HTTP)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent closed-loop clients (default: 4)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds each client issues queries (default: 5)")
    parser.add_argument("--mix", default=None,
                        help="weighted mix, e.g. 'Q1=4,Q3a=2,Q2=1' "
                             "(default: the log-study mix)")
    parser.add_argument("--queries", nargs="+", default=None,
                        help="equal-weight mix over these catalog query ids")
    parser.add_argument("--mode", choices=("thread", "process"), default=None,
                        help="client concurrency model (default: thread; "
                             "process scales in-process runs past the GIL)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-query deadline in seconds")
    parser.add_argument("--engine", default=NATIVE_COST.name,
                        choices=[config.name for config in CLI_ENGINE_CONFIGS],
                        help="engine preset for in-process runs")
    parser.add_argument("--seed", type=int, default=97,
                        help="base seed of the per-client query streams")
    parser.add_argument("--update-fraction", type=float, default=0.0,
                        help="fraction of operations that are SPARQL updates "
                             "(mixed read/write mode with canary torn-write "
                             "detection; default: 0 = read-only)")
    parser.add_argument("--scrape-metrics", action="store_true",
                        help="scrape the server's /metrics before and after "
                             "the run (HTTP mode only; requires the server "
                             "to run with --metrics) and print a server-side "
                             "telemetry report alongside the client view")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of a table")
    parser.add_argument("--fail-on-error", action="store_true",
                        help="exit non-zero when any request is classified "
                             "as an error or a torn read")
    args = parser.parse_args(argv)

    mix = _parse_mix(args.mix, args.queries)
    mode = args.mode or "thread"
    if mode == "process" and not process_mode_available():
        print("process mode unavailable (no fork); falling back to threads",
              file=sys.stderr)
        mode = "thread"
    scrape_before = None
    if args.scrape_metrics:
        if not args.url:
            parser.error("--scrape-metrics requires --url (it reads the "
                         "server's /metrics endpoint)")
        from .obs import scrape as scrape_module

        metrics_url = scrape_module.metrics_url_for(args.url)
        try:
            scrape_before = scrape_module.scrape(metrics_url)
        except OSError as error:
            # Best-effort: a server without --metrics (404) or an
            # unreachable one should not abort the load test itself.
            print(f"warning: could not scrape {metrics_url}: {error}",
                  file=sys.stderr)
    mixed = args.update_fraction > 0
    if args.url:
        if mixed:
            report = run_mixed_http_workload(
                args.url, mix=mix, update_fraction=args.update_fraction,
                clients=args.clients, duration=args.duration, mode=mode,
                timeout=args.timeout, seed=args.seed,
            )
        else:
            report = run_http_workload(
                args.url, mix=mix, clients=args.clients,
                duration=args.duration, mode=mode, timeout=args.timeout,
                seed=args.seed,
            )
    else:
        engine = _build_engine(args.document, args.engine)
        if mixed:
            # In-process mixed runs are thread-only: forked processes would
            # write into private copy-on-write stores.
            if args.mode == "process":
                print("mixed read/write mode is thread-only in-process; "
                      "using threads", file=sys.stderr)
            report = run_mixed_engine_workload(
                engine, mix=mix, update_fraction=args.update_fraction,
                clients=args.clients, duration=args.duration,
                timeout=args.timeout, seed=args.seed,
            )
        else:
            report = run_engine_workload(
                engine, mix=mix, clients=args.clients,
                duration=args.duration, mode=mode, timeout=args.timeout,
                seed=args.seed,
            )

    if args.json:
        json.dump(report.as_dict(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print(reporting.workload_summary(report))
        print(reporting.workload_table(report))
    if scrape_before is not None:
        try:
            scrape_after = scrape_module.scrape(metrics_url)
        except OSError as error:
            print(f"warning: could not scrape {metrics_url}: {error}",
                  file=sys.stderr)
        else:
            print(scrape_module.format_server_report(scrape_before,
                                                     scrape_after))
    if args.fail_on_error and (report.errors or report.torn):
        print(f"loadtest failed: {report.errors} request(s) classified as "
              f"errors, {report.torn} torn read(s)", file=sys.stderr)
        return 1
    return 0


def bench_main(argv=None):
    """Entry point of ``sp2bench-bench``."""
    parser = argparse.ArgumentParser(description="Run the full SP2Bench benchmark harness.")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_DOCUMENT_SIZES),
                        help="document sizes in triples (default: %(default)s)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-query timeout in seconds (default: 30)")
    parser.add_argument("--queries", nargs="+", default=None,
                        help="subset of query ids to run (default: all 17)")
    parser.add_argument("--runs", type=int, default=1, help="runs per query (default: 1)")
    parser.add_argument("--cache-dir", default=None,
                        help="dataset cache directory (default: $SP2B_CACHE_DIR "
                             "or ~/.cache/sp2bench)")
    parser.add_argument("--no-cache", action="store_true",
                        help="regenerate documents instead of using the dataset cache")
    args = parser.parse_args(argv)

    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = str(args.cache_dir or default_cache_dir())
    queries = ALL_QUERIES if args.queries is None else tuple(
        get_query(identifier) for identifier in args.queries
    )
    config = ExperimentConfig(
        document_sizes=tuple(args.sizes),
        queries=queries,
        timeout=args.timeout,
        runs=args.runs,
        cache_dir=cache_dir,
    )
    report = BenchmarkHarness(config).run()
    print(reporting.full_report(report))
    return 0


def main(argv=None):
    """Dispatching entry point (``repro <command>`` / ``python -m repro.cli``)."""
    commands = {
        "generate": generate_main,
        "build": build_main,
        "query": query_main,
        "serve": serve_main,
        "loadtest": loadtest_main,
        "bench": bench_main,
        "cache": cache_main,
    }
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in commands:
        print("usage: repro {generate|build|query|serve|loadtest|bench|cache} "
              "[options]", file=sys.stderr)
        return 2
    return commands[argv[0]](argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
