#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against a committed baseline.

CI machines differ in absolute speed from whatever machine produced the
baseline, so raw seconds cannot be compared.  Instead, every benchmark's
mean time is *normalized by the geometric mean of all benchmarks shared by
both runs* — a machine twice as fast shrinks every time and the ratios
cancel.  A benchmark regresses when its normalized time exceeds the
baseline's normalized time by more than the threshold factor, i.e. when it
got slower *relative to the rest of the suite*.

Usage:
    python tools/compare_benchmarks.py benchmarks/baseline.json results.json
    python tools/compare_benchmarks.py benchmarks/baseline.json results.json \
        --threshold 1.25
    python tools/compare_benchmarks.py benchmarks/baseline.json results.json \
        --update            # rewrite the baseline from the current results

``results.json`` is the file produced by ``pytest --benchmark-json``; the
baseline is this script's own compact schema (``{"means": {name: secs}}``).
Benchmarks present on only one side are reported but never fail the gate
(new benchmarks need a baseline refresh, not a red build).
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def load_baseline(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "means" not in data:
        raise SystemExit(f"{path}: not a baseline file (missing 'means')")
    return data["means"]


def load_results(path):
    """Mean times by benchmark name from a pytest-benchmark JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    means = {}
    for bench in data.get("benchmarks", ()):
        name = bench.get("name")
        stats = bench.get("stats") or {}
        mean = stats.get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            means[name] = float(mean)
    if not means:
        raise SystemExit(f"{path}: no benchmark timings found")
    return means


def geometric_mean(values):
    values = [max(value, 1e-9) for value in values]
    return math.exp(sum(math.log(value) for value in values) / len(values))


def normalized(means, names, scale_names=None):
    scale = geometric_mean([means[name] for name in (scale_names or names)])
    return {name: means[name] / scale for name in names}


def compare(baseline, current, threshold, min_time=0.0, gate_prefix=""):
    """Return (regressions, report_lines) for the shared benchmark set.

    Benchmarks faster than ``min_time`` in *both* runs are reported but can
    never fail the gate: their timings are dominated by scheduler and
    allocator noise, not by query work.  When ``gate_prefix`` is non-empty,
    only benchmarks whose name starts with it can fail the gate; everything
    else is compared informationally.
    """
    shared = sorted(set(baseline) & set(current))
    lines = []
    regressions = []
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))
    if not shared:
        lines.append("no shared benchmarks between baseline and current run")
        return regressions, lines
    # Normalize over the gated subset when one is selected: a volatile
    # non-gated benchmark must not shift the geomean and manufacture (or
    # mask) regressions in the queries the gate actually protects.
    scale_names = [name for name in shared if name.startswith(gate_prefix)]
    if len(scale_names) < 2:
        scale_names = shared
    base_norm = normalized(baseline, shared, scale_names)
    curr_norm = normalized(current, shared, scale_names)
    width = max(len(name) for name in shared)
    for name in shared:
        ratio = curr_norm[name] / max(base_norm[name], 1e-9)
        noise_floor = baseline[name] < min_time and current[name] < min_time
        gated = name.startswith(gate_prefix)
        marker = ""
        if ratio > threshold and gated and not noise_floor:
            marker = "  << REGRESSION"
            regressions.append((name, ratio))
        elif ratio > threshold and not gated:
            marker = "  (over threshold, informational — outside gate)"
        elif ratio > threshold and noise_floor:
            marker = "  (over threshold but below noise floor)"
        elif ratio < 1.0 / threshold:
            marker = "  (improved)"
        lines.append(
            f"  {name:<{width}}  baseline={baseline[name] * 1e3:9.3f}ms  "
            f"current={current[name] * 1e3:9.3f}ms  "
            f"normalized-ratio={ratio:5.2f}{marker}"
        )
    for name in only_baseline:
        lines.append(f"  {name}: in baseline only (skipped)")
    for name in only_current:
        lines.append(f"  {name}: new benchmark, no baseline yet (skipped)")
    return regressions, lines


def write_baseline(path, means, source):
    data = {
        "schema": "sp2bench-baseline-v1",
        "normalization": "geometric-mean of shared benchmarks",
        "source": source,
        "means": {name: means[name] for name in sorted(means)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=False)
        handle.write("\n")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON (own schema)")
    parser.add_argument("results", help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="allowed normalized slow-down factor (default 1.25)")
    parser.add_argument("--min-time", type=float, default=0.002,
                        help="seconds below which timings are treated as noise "
                             "and never fail the gate (default 0.002)")
    parser.add_argument("--gate-prefix", default="",
                        help="only benchmarks starting with this prefix can "
                             "fail the gate (others compare informationally)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current results")
    args = parser.parse_args(argv)

    current = load_results(args.results)
    if args.update:
        write_baseline(args.baseline, current, source=args.results)
        print(f"baseline {args.baseline} updated with {len(current)} benchmarks")
        return 0

    baseline = load_baseline(args.baseline)
    regressions, lines = compare(baseline, current, args.threshold,
                                 min_time=args.min_time,
                                 gate_prefix=args.gate_prefix)
    print(f"benchmark regression gate (threshold {args.threshold:.2f}x, "
          "normalized by run geomean)")
    for line in lines:
        print(line)
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x over baseline")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
