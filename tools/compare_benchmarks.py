#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against a committed baseline.

CI machines differ in absolute speed from whatever machine produced the
baseline, so raw seconds cannot be compared.  Instead, every benchmark's
mean time is *normalized by the geometric mean of all benchmarks shared by
both runs* — a machine twice as fast shrinks every time and the ratios
cancel.  A benchmark regresses when its normalized time exceeds the
baseline's normalized time by more than the threshold factor, i.e. when it
got slower *relative to the rest of the suite*.

Usage:
    python tools/compare_benchmarks.py benchmarks/baseline.json results.json
    python tools/compare_benchmarks.py benchmarks/baseline.json results.json \
        --threshold 1.25
    python tools/compare_benchmarks.py benchmarks/baseline.json results.json \
        --update            # rewrite the baseline from the current results

``results.json`` is the file produced by ``pytest --benchmark-json``; the
baseline is this script's own compact schema (``{"means": {name: secs}}``).
Benchmarks present on only one side are reported but never fail the gate
(new benchmarks need a baseline refresh, not a red build).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys


#: The per-benchmark time estimator this tool records and compares.  A
#: baseline recorded under a different estimator must be rejected, not
#: silently compared: minima are systematically <= means, so mixing the two
#: would bias every ratio and let real regressions through the gate.
ESTIMATOR = "min"


def load_baseline(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "means" not in data:
        raise SystemExit(f"{path}: not a baseline file (missing 'means')")
    estimator = data.get("estimator", "mean")
    if estimator != ESTIMATOR:
        raise SystemExit(
            f"{path}: baseline recorded with the {estimator!r} estimator, "
            f"this tool compares {ESTIMATOR!r} round times — refresh it with "
            f"--update before gating"
        )
    return data["means"]


def load_results(path):
    """Per-benchmark timings from a pytest-benchmark JSON file.

    The *minimum* round time is used when available (falling back to the
    mean): the min is the classic low-noise estimator of a benchmark's true
    cost — a single scheduler hiccup inflates the mean of a 3-round run by
    30%+ but leaves the min untouched, and the gate must fire on real
    slow-downs, not on one preempted round.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    means = {}
    for bench in data.get("benchmarks", ()):
        name = bench.get("name")
        stats = bench.get("stats") or {}
        timing = stats.get("min", stats.get("mean"))
        if name and isinstance(timing, (int, float)) and timing > 0:
            means[name] = float(timing)
    if not means:
        raise SystemExit(f"{path}: no benchmark timings found")
    return means


def load_vectorized_flags(path):
    """Per-benchmark ``vectorized`` extra-info flags from a results file.

    The catalog-regression bench records whether each query's plan carried
    batch kernels (``benchmark.extra_info["vectorized"]``); benchmarks that
    never recorded the flag are simply absent from the mapping.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    flags = {}
    for bench in data.get("benchmarks", ()):
        name = bench.get("name")
        info = bench.get("extra_info") or {}
        if name and "vectorized" in info:
            flags[name] = bool(info["vectorized"])
    return flags


def geometric_mean(values):
    values = [max(value, 1e-9) for value in values]
    return math.exp(sum(math.log(value) for value in values) / len(values))


def normalized(means, names, scale_names=None):
    scale = geometric_mean([means[name] for name in (scale_names or names)])
    return {name: means[name] / scale for name in names}


#: Row verdicts, in the order they should alarm a reader.
REGRESSION = "regression"
OVER_OUTSIDE_GATE = "over threshold (outside gate)"
OVER_NOISE_FLOOR = "over threshold (below noise floor)"
IMPROVED = "improved"
OK = "ok"


def compare(baseline, current, threshold, min_time=0.0, gate_prefix=""):
    """Compare two runs; returns ``(regressions, report_lines, rows)``.

    ``rows`` is the structured per-benchmark comparison — ``(name,
    baseline_seconds, current_seconds, normalized_ratio, gated, verdict)`` —
    that both the text report and the step-summary markdown render from.

    Benchmarks faster than ``min_time`` in *both* runs are reported but can
    never fail the gate: their timings are dominated by scheduler and
    allocator noise, not by query work.  When ``gate_prefix`` is non-empty,
    only benchmarks whose name starts with it can fail the gate; everything
    else is compared informationally.
    """
    shared = sorted(set(baseline) & set(current))
    lines = []
    rows = []
    regressions = []
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))
    if not shared:
        lines.append("no shared benchmarks between baseline and current run")
        return regressions, lines, rows
    # Normalize over the gated subset when one is selected: a volatile
    # non-gated benchmark must not shift the geomean and manufacture (or
    # mask) regressions in the queries the gate actually protects.
    scale_names = [name for name in shared if name.startswith(gate_prefix)]
    if len(scale_names) < 2:
        scale_names = shared
    base_norm = normalized(baseline, shared, scale_names)
    curr_norm = normalized(current, shared, scale_names)
    width = max(len(name) for name in shared)
    markers = {
        REGRESSION: "  << REGRESSION",
        OVER_OUTSIDE_GATE: "  (over threshold, informational — outside gate)",
        OVER_NOISE_FLOOR: "  (over threshold but below noise floor)",
        IMPROVED: "  (improved)",
        OK: "",
    }
    for name in shared:
        ratio = curr_norm[name] / max(base_norm[name], 1e-9)
        noise_floor = baseline[name] < min_time and current[name] < min_time
        gated = name.startswith(gate_prefix)
        if ratio > threshold and gated and not noise_floor:
            verdict = REGRESSION
            regressions.append((name, ratio))
        elif ratio > threshold and not gated:
            verdict = OVER_OUTSIDE_GATE
        elif ratio > threshold:
            verdict = OVER_NOISE_FLOOR
        elif ratio < 1.0 / threshold:
            verdict = IMPROVED
        else:
            verdict = OK
        rows.append((name, baseline[name], current[name], ratio, gated, verdict))
        lines.append(
            f"  {name:<{width}}  baseline={baseline[name] * 1e3:9.3f}ms  "
            f"current={current[name] * 1e3:9.3f}ms  "
            f"normalized-ratio={ratio:5.2f}{markers[verdict]}"
        )
    for name in only_baseline:
        lines.append(f"  {name}: in baseline only (skipped)")
    for name in only_current:
        lines.append(f"  {name}: new benchmark, no baseline yet (skipped)")
    return regressions, lines, rows


_VERDICT_BADGES = {
    REGRESSION: "❌ regression",
    OVER_OUTSIDE_GATE: "ℹ️ over threshold (outside gate)",
    OVER_NOISE_FLOOR: "⚪ over threshold (noise floor)",
    IMPROVED: "🔵 improved",
    OK: "✅ ok",
}


def step_summary_markdown(rows, threshold, regression_count, vectorized=None):
    """The per-query regression table as GitHub-flavoured markdown.

    Written to ``$GITHUB_STEP_SUMMARY`` by ``--step-summary`` so pull
    requests show baseline-versus-current timings, the normalized ratio, and
    the gate verdict without anyone downloading the results artifact.
    ``vectorized`` maps benchmark names to whether their plan carried batch
    kernels; queries without a recorded flag show a dash.
    """
    vectorized = vectorized or {}
    lines = ["### Benchmark regression gate", ""]
    if not rows:
        lines.append("No shared benchmarks between baseline and current run.")
        lines.append("")
        return "\n".join(lines)
    verdict = (
        f"**{regression_count} regression(s)** ❌" if regression_count
        else "no regressions ✅"
    )
    lines.append(
        f"{verdict} — threshold ×{threshold:.2f} on the normalized ratio "
        f"(geometric-mean scaled, machine speed cancels), "
        f"{len(rows)} shared benchmark(s)."
    )
    lines.append("")
    lines.append(
        "| Benchmark | Baseline | Current | Ratio | Vectorized | Verdict |"
    )
    lines.append("|:--|--:|--:|--:|:--:|:--|")
    # Worst offenders first so a failing gate explains itself above the fold.
    for name, base, curr, ratio, _gated, verdict in sorted(
        rows, key=lambda row: (row[5] != REGRESSION, -row[3])
    ):
        flag = vectorized.get(name)
        kernel_badge = "—" if flag is None else ("⚡ yes" if flag else "no")
        lines.append(
            f"| `{name}` | {base * 1e3:.3f} ms | {curr * 1e3:.3f} ms "
            f"| {ratio:.2f} | {kernel_badge} | {_VERDICT_BADGES[verdict]} |"
        )
    lines.append("")
    return "\n".join(lines)


def write_baseline(path, means, source):
    data = {
        "schema": "sp2bench-baseline-v2",
        "estimator": ESTIMATOR,
        "normalization": "geometric-mean of shared benchmarks",
        "source": source,
        "means": {name: means[name] for name in sorted(means)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=False)
        handle.write("\n")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON (own schema)")
    parser.add_argument("results", help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="allowed normalized slow-down factor (default 1.25)")
    parser.add_argument("--min-time", type=float, default=0.002,
                        help="seconds below which timings are treated as noise "
                             "and never fail the gate (default 0.002)")
    parser.add_argument("--gate-prefix", default="",
                        help="only benchmarks starting with this prefix can "
                             "fail the gate (others compare informationally)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current results")
    parser.add_argument("--step-summary", nargs="?", const="", default=None,
                        metavar="PATH",
                        help="append the comparison as a markdown table to "
                             "PATH (default: $GITHUB_STEP_SUMMARY), so the "
                             "table shows up on the PR without downloading "
                             "artifacts")
    args = parser.parse_args(argv)

    current = load_results(args.results)
    if args.update:
        write_baseline(args.baseline, current, source=args.results)
        print(f"baseline {args.baseline} updated with {len(current)} benchmarks")
        return 0

    baseline = load_baseline(args.baseline)
    regressions, lines, rows = compare(baseline, current, args.threshold,
                                       min_time=args.min_time,
                                       gate_prefix=args.gate_prefix)
    print(f"benchmark regression gate (threshold {args.threshold:.2f}x, "
          "normalized by run geomean)")
    for line in lines:
        print(line)

    if args.step_summary is not None:
        summary_path = args.step_summary or os.environ.get("GITHUB_STEP_SUMMARY")
        if summary_path:
            # Written before the gate verdict exits: a failing build is
            # exactly when the table must be visible on the PR.
            with open(summary_path, "a", encoding="utf-8") as handle:
                handle.write(step_summary_markdown(
                    rows, args.threshold, len(regressions),
                    vectorized=load_vectorized_flags(args.results),
                ))
                handle.write("\n")
        else:
            print("--step-summary: no path given and $GITHUB_STEP_SUMMARY "
                  "unset; skipping markdown summary", file=sys.stderr)

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x over baseline")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
