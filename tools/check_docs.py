"""Fail CI when the docs drift from the repo or the CLI.

Three independent checks over README.md, DESIGN.md, and docs/*.md:

1. **Intra-repo links.**  Every relative markdown link must point at a
   file that exists, and every ``#anchor`` fragment must match a
   GitHub-style heading slug in the target document.  External links
   (``http://``, ``https://``, ``mailto:``) are ignored.

2. **README command drift.**  Every ``$ repro <sub> ...`` line inside a
   README console block is checked against the live CLI: the subcommand
   must exist, and every ``--flag`` the line uses must appear in that
   subcommand's ``--help`` output.

3. **Metrics reference drift.**  Every ``sp2b_*`` series registered in
   ``src/repro`` (a ``.counter(``/``.gauge(``/``.histogram(`` call) must
   appear in ``docs/metrics.md``, and every ``sp2b_*`` name that page
   documents must still be registered somewhere in the source tree.

Exit status is non-zero iff any check fails; every failure is reported
with file and line.  Run from anywhere:

    python tools/check_docs.py [repo-root]
"""

import os
import re
import subprocess
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
#: characters GitHub keeps when slugging a heading (besides spaces/hyphens)
SLUG_DROP_RE = re.compile(r"[^\w\- ]", re.UNICODE)
COMMAND_RE = re.compile(r"^\$ (repro\s.*)$")
FLAG_RE = re.compile(r"--[A-Za-z][A-Za-z0-9-]*")
#: a registry registration call; the name literal may sit on the next line
METRIC_REGISTRATION_RE = re.compile(
    r"\.(?:counter|gauge|histogram)\(\s*\"(sp2b_[a-z0-9_]+)\"")
METRIC_NAME_TOKEN_RE = re.compile(r"sp2b_[a-z0-9_]+")
#: per-sample suffixes histograms expand into — not separate series
METRIC_SUFFIX_RE = re.compile(r"_(?:bucket|sum|count)$")


def doc_files(root):
    files = [root / "README.md", root / "DESIGN.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.is_file()]


def iter_prose_lines(text):
    """Yield (lineno, line) outside fenced code blocks."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield lineno, line


def iter_fenced_lines(text):
    """Yield (lineno, line) inside fenced code blocks."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            yield lineno, line


def github_slug(heading, seen):
    """The anchor GitHub generates for a heading, deduplicated via *seen*."""
    # Strip inline-code backticks and markdown emphasis before slugging.
    text = heading.replace("`", "").replace("*", "").replace("_", " ")
    slug = SLUG_DROP_RE.sub("", text.strip().lower()).replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path, cache):
    anchors = cache.get(path)
    if anchors is None:
        seen = {}
        anchors = set()
        for _, line in iter_prose_lines(path.read_text(encoding="utf-8")):
            match = HEADING_RE.match(line)
            if match:
                anchors.add(github_slug(match.group(2), seen))
        cache[path] = anchors
    return anchors


def check_links(root, errors):
    cache = {}
    for path in doc_files(root):
        rel = path.relative_to(root)
        for lineno, line in iter_prose_lines(path.read_text(encoding="utf-8")):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                base, _, fragment = target.partition("#")
                dest = (path.parent / base).resolve() if base else path
                if not dest.is_file():
                    errors.append(f"{rel}:{lineno}: broken link {target!r} "
                                  f"({dest} does not exist)")
                    continue
                if fragment and dest.suffix == ".md":
                    if fragment not in anchors_of(dest, cache):
                        errors.append(
                            f"{rel}:{lineno}: link {target!r} points at "
                            f"anchor #{fragment}, which matches no heading "
                            f"in {dest.name}"
                        )


def readme_commands(readme_text):
    """Yield (lineno, argv-tokens) for each ``$ repro ...`` console line."""
    pending = None
    for lineno, line in iter_fenced_lines(readme_text):
        stripped = line.strip()
        if pending is not None:
            start, words = pending
            words.extend(stripped.rstrip("\\").split())
            pending = (start, words) if stripped.endswith("\\") else None
            if pending is None:
                yield start, words
            continue
        match = COMMAND_RE.match(stripped)
        if match:
            words = match.group(1).rstrip("\\").split()
            if stripped.endswith("\\"):
                pending = (lineno, words)
            else:
                yield lineno, words


def subcommand_help(root, sub, cache):
    if sub not in cache:
        result = subprocess.run(
            [sys.executable, "-c",
             "import sys; from repro.cli import main; sys.exit(main())",
             sub, "--help"],
            capture_output=True, text=True, cwd=root,
            env={**os.environ, "PYTHONPATH": str(root / "src")},
        )
        # Unknown subcommands make main() print usage and return 2; --help
        # on a real subcommand always exits 0.
        ok = result.returncode == 0
        cache[sub] = (result.stdout + result.stderr) if ok else None
    return cache[sub]


def check_commands(root, errors):
    readme = root / "README.md"
    cache = {}
    for lineno, words in readme_commands(readme.read_text(encoding="utf-8")):
        if len(words) < 2:
            errors.append(f"README.md:{lineno}: bare `repro` invocation")
            continue
        sub = words[1]
        help_text = subcommand_help(root, sub, cache)
        if help_text is None:
            errors.append(f"README.md:{lineno}: unknown subcommand "
                          f"`repro {sub}`")
            continue
        for token in words[2:]:
            for flag in FLAG_RE.findall(token.split("=", 1)[0]):
                if flag not in help_text:
                    errors.append(
                        f"README.md:{lineno}: `repro {sub}` does not "
                        f"accept {flag} (not in its --help output)"
                    )


def registered_metric_names(root):
    """Map sp2b series name -> "file:line" of its registration call."""
    registered = {}
    for path in sorted((root / "src").rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in METRIC_REGISTRATION_RE.finditer(text):
            lineno = text.count("\n", 0, match.start(1)) + 1
            registered.setdefault(
                match.group(1), f"{path.relative_to(root)}:{lineno}")
    return registered


def documented_metric_names(metrics_doc):
    """Map sp2b series name -> first line mentioning it in metrics.md."""
    documented = {}
    for lineno, line in enumerate(
            metrics_doc.read_text(encoding="utf-8").splitlines(), start=1):
        for token in METRIC_NAME_TOKEN_RE.findall(line):
            documented.setdefault(METRIC_SUFFIX_RE.sub("", token), lineno)
    return documented


def check_metrics_reference(root, errors):
    metrics_doc = root / "docs" / "metrics.md"
    registered = registered_metric_names(root)
    if not metrics_doc.is_file():
        # A tree with no registered series needs no reference page.
        if registered:
            errors.append(
                f"docs/metrics.md: missing, but {len(registered)} sp2b_* "
                f"series are registered under src/"
            )
        return
    documented = documented_metric_names(metrics_doc)
    for name in sorted(set(registered) - set(documented)):
        errors.append(
            f"{registered[name]}: metric {name!r} is registered but not "
            f"documented in docs/metrics.md"
        )
    for name in sorted(set(documented) - set(registered)):
        errors.append(
            f"docs/metrics.md:{documented[name]}: metric {name!r} is "
            f"documented but no longer registered under src/"
        )


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    root = (Path(argv[0]) if argv else Path(__file__).resolve().parent.parent)
    root = root.resolve()
    errors = []
    check_links(root, errors)
    check_commands(root, errors)
    check_metrics_reference(root, errors)
    if errors:
        print(f"docs check failed ({len(errors)} problem(s)):")
        for error in errors:
            print(f"  {error}")
        return 1
    files = ", ".join(str(p.relative_to(root)) for p in doc_files(root))
    print(f"docs check passed ({files})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
