"""Quickstart: generate a DBLP-like document and run SP2Bench queries on it.

Shows the serving-oriented engine API: ``engine.prepare()`` parses and plans
a query once, ``.run()`` executes it many times (optionally with pre-bound
parameters), and the returned cursor streams solutions lazily — ``LIMIT``
reads stop evaluating early, and results serialize straight to the W3C
SPARQL-results formats.  ``engine.query()`` remains the compatible eager
shorthand when you just want the whole result.

Run with::

    python examples/quickstart.py
"""

from repro import SparqlEngine, generate_graph, get_query


def main():
    # 1. Generate a DBLP-like RDF document with ~5,000 triples.  Generation is
    #    deterministic: the same configuration always yields the same data.
    graph = generate_graph(triple_limit=5_000)
    print(f"generated document with {len(graph)} triples")

    # 2. Load it into a SPARQL engine (the default preset is the index-backed,
    #    optimizer-enabled configuration).
    engine = SparqlEngine.from_graph(graph)

    # 3. The eager shorthand: parse, plan, evaluate, materialize in one call.
    q1 = engine.query(get_query("Q1").text)
    print(f"\nQ1 (year of 'Journal 1 (1940)'): {q1.rows()[0][0]}")

    q9 = engine.query(get_query("Q9").text)
    print("\nQ9 (incoming/outgoing properties of persons):")
    for (predicate,) in q9.rows():
        print(f"  {predicate}")

    # 4. The streaming path: a lazy, iterate-once cursor.  Rows are produced
    #    on demand, so a bounded read never evaluates the full result.
    with engine.stream("""
        SELECT DISTINCT ?name WHERE {
          ?doc dc:creator ?person .
          ?person foaf:name ?name
        } ORDER BY ?name LIMIT 5
        """) as cursor:
        print("\nFirst five author names (streamed):")
        for (name,) in cursor.rows():
            print(f"  {name}")

    # 5. Prepared queries: parse+plan once, execute many times — the shape of
    #    production traffic, where the same template runs with different
    #    parameters.  Pre-bound variables seed the evaluation directly.
    author_docs = engine.prepare(
        "SELECT ?doc WHERE { ?doc dc:creator ?person . ?person foaf:name ?name }"
    )
    some_names = [row[0] for row in engine.query(
        "SELECT DISTINCT ?name WHERE { ?p foaf:name ?name } LIMIT 3"
    ).rows()]
    print("\nDocuments per author (one prepared template, many runs):")
    for name in some_names:
        count = sum(1 for _ in author_docs.run(bindings={"name": name}))
        print(f"  {name}: {count} documents")
    print(f"  (template prepared once, executed {author_docs.run_count} times)")

    # 6. Cursors serialize to the W3C SPARQL-results formats without
    #    materializing: json, csv, or tsv.
    csv_text = engine.stream(
        "SELECT ?name WHERE { ?p foaf:name ?name } ORDER BY ?name LIMIT 3"
    ).serialize("csv")
    print("\nThe same rows as SPARQL-results CSV:")
    print("  " + csv_text.replace("\r\n", "\n  ").rstrip())

    # 7. ASK queries share the cursor protocol and return a boolean.
    print(f"\nQ12c (is John Q. Public in the data?): {engine.ask(get_query('Q12c').text)}")


if __name__ == "__main__":
    main()
