"""Quickstart: generate a DBLP-like document and run SP2Bench queries on it.

Run with::

    python examples/quickstart.py
"""

from repro import SparqlEngine, generate_graph, get_query


def main():
    # 1. Generate a DBLP-like RDF document with ~5,000 triples.  Generation is
    #    deterministic: the same configuration always yields the same data.
    graph = generate_graph(triple_limit=5_000)
    print(f"generated document with {len(graph)} triples")

    # 2. Load it into a SPARQL engine (the default preset is the index-backed,
    #    optimizer-enabled configuration).
    engine = SparqlEngine.from_graph(graph)

    # 3. Run benchmark queries by their paper identifier.
    q1 = engine.query(get_query("Q1").text)
    print(f"\nQ1 (year of 'Journal 1 (1940)'): {q1.rows()[0][0]}")

    q9 = engine.query(get_query("Q9").text)
    print("\nQ9 (incoming/outgoing properties of persons):")
    for (predicate,) in q9.rows():
        print(f"  {predicate}")

    q5b = engine.query(get_query("Q5b").text)
    print(f"\nQ5b (authors of both an article and an inproceedings): {len(q5b)} persons")
    for binding in list(q5b)[:5]:
        print(f"  {binding.get('name')}")

    # 4. Ad-hoc queries work the same way — any SELECT/ASK query over the
    #    SP2Bench vocabulary.
    busiest = engine.query(
        """
        SELECT DISTINCT ?name WHERE {
          ?doc dc:creator ?person .
          ?person foaf:name ?name
        } ORDER BY ?name LIMIT 5
        """
    )
    print("\nFirst five author names (ad-hoc query):")
    for (name,) in busiest.rows():
        print(f"  {name}")

    # 5. ASK queries return a boolean result.
    print(f"\nQ12c (is John Q. Public in the data?): {engine.ask(get_query('Q12c').text)}")


if __name__ == "__main__":
    main()
