"""Distribution analysis: verify that generated data mirrors DBLP (Section III).

Generates a document, measures the distributions the paper fits (attribute
probabilities, document-class growth, authors-per-paper, publication counts,
citations), and prints them next to the model values — the same comparison
the Figure 2 benches automate.

Run with::

    python examples/distribution_analysis.py
"""

from repro import DblpGenerator, GeneratorConfig
from repro.analysis import (
    DocumentSetStatistics,
    citation_distribution_series,
    publication_count_series,
)
from repro.generator import attribute_probability


def attribute_table(stats):
    print("== Attribute probabilities: Table I value vs. measured ==")
    pairs = (
        ("author", "article"), ("pages", "article"), ("month", "article"),
        ("isbn", "article"), ("journal", "article"),
        ("author", "inproceedings"), ("pages", "inproceedings"),
        ("editor", "proceedings"),
    )
    print(f"{'attribute':>10} {'class':>15} {'paper':>8} {'measured':>9}")
    for attribute, document_class in pairs:
        paper_value = attribute_probability(attribute, document_class)
        measured = stats.attribute_probability(attribute, document_class)
        print(f"{attribute:>10} {document_class:>15} {paper_value:8.4f} {measured:9.4f}")


def class_growth(stats):
    print("\n== Document class instances per year (Figure 2b) ==")
    by_year = stats.class_counts_by_year()
    for year in sorted(by_year):
        counts = by_year[year]
        total = sum(counts.values())
        bar = "#" * min(total // 4, 60)
        print(f"  {year}: {total:4d} {bar}")


def author_distributions(stats, graph):
    print("\n== Authors per paper (d_auth) ==")
    histogram = stats.authors_per_paper_histogram()
    for count in sorted(histogram)[:8]:
        print(f"  {count} author(s): {histogram[count]} documents")

    print("\n== Publication counts per author (Figure 2c, power law) ==")
    series = dict(publication_count_series(graph)["measured"])
    for x in (1, 2, 3, 5, 10, 20):
        print(f"  {x:>3} publications: {series.get(x, 0)} authors")


def citation_distribution(graph):
    print("\n== Outgoing citations per citing document (Figure 2a) ==")
    series = citation_distribution_series(graph, max_citations=40)
    measured = dict(series["measured"] or [])
    model = dict(series["model"])
    for x in (1, 5, 10, 17, 25, 40):
        print(f"  x={x:>2}  model={model[x]:.4f}  measured={measured.get(x, 0.0):.4f}")


def main():
    generator = DblpGenerator(GeneratorConfig(triple_limit=10_000))
    graph = generator.graph()
    print(f"analyzing a generated document with {len(graph)} triples "
          f"(data up to {generator.statistics.last_year})\n")
    stats = DocumentSetStatistics(graph)

    attribute_table(stats)
    class_growth(stats)
    author_distributions(stats, graph)
    citation_distribution(graph)

    summary = stats.summary()
    print("\n== Table VIII style summary ==")
    for key, value in summary.items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
