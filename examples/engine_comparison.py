"""Engine comparison: the Section VI experiment in miniature.

Runs a representative subset of the benchmark queries against all four engine
configurations (in-memory/native x baseline/optimized) on two document sizes
and prints per-query times, the success matrix, and the global means — the
same views the paper reports in Tables IV, VI, and VII.

Run with::

    python examples/engine_comparison.py
"""

from repro import ExperimentConfig, BenchmarkHarness, get_query
from repro.bench import reporting
from repro.sparql import ENGINE_PRESETS

#: A subset that covers the interesting behaviours but stays fast: constant
#: time lookups (Q1, Q10, Q12c), scaling scans (Q2, Q3a), the implicit vs
#: explicit join pair (Q5a, Q5b), and schema extraction (Q9).
QUERY_IDS = ("Q1", "Q2", "Q3a", "Q3c", "Q5a", "Q5b", "Q9", "Q10", "Q11", "Q12c")


def main():
    config = ExperimentConfig(
        document_sizes=(1_000, 4_000),
        engines=ENGINE_PRESETS,
        queries=tuple(get_query(identifier) for identifier in QUERY_IDS),
        timeout=20.0,
        trace_memory=False,
    )
    print("running the benchmark harness "
          f"({len(config.queries)} queries x {len(config.engines)} engines "
          f"x {len(config.document_sizes)} document sizes) ...")
    report = BenchmarkHarness(config).run()

    print("\n== Loading times ==")
    print(reporting.loading_times_table(report))

    print("\n== Per-query behaviour: Q5a (implicit join) vs Q5b (explicit join) ==")
    print(reporting.per_query_table(report, "Q5a"))
    print()
    print(reporting.per_query_table(report, "Q5b"))

    print("\n== Global performance (Tables VI/VII) ==")
    print(reporting.global_performance_table(report))

    print("\n== Success rates (Table IV) ==")
    for engine in report.engine_names():
        print(f"\n[{engine}]")
        print(reporting.success_rate_table(report, engine))

    fastest = min(
        report.engine_names(),
        key=lambda engine: report.global_performance(engine, 4_000)["geometric_mean_time"],
    )
    print(f"\nbest geometric mean on the 4,000-triple document: {fastest}")


if __name__ == "__main__":
    main()
