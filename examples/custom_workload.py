"""Custom workload: write generated data to disk and query it from a file.

Demonstrates the file-based workflow the original benchmark distribution
supports: generate an N-Triples document with the CLI-equivalent API, reload
it, and run both catalog queries and hand-written queries — including the
negation idiom and the container access that make SP2Bench distinctive.

Run with::

    python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import DblpGenerator, GeneratorConfig, SparqlEngine, get_query
from repro.rdf import load_into
from repro.sparql import IN_MEMORY_OPTIMIZED


def generate_to_file(path, triple_limit):
    generator = DblpGenerator(GeneratorConfig(triple_limit=triple_limit))
    count = generator.write(path)
    print(f"wrote {count} triples to {path}")
    return generator.statistics.as_dict()


def main():
    with tempfile.TemporaryDirectory() as workdir:
        path = Path(workdir) / "sp2bench-5k.nt"
        stats = generate_to_file(path, triple_limit=5_000)
        print(f"document characteristics: {stats['class_totals']}")

        # Reload from disk, as a downstream engine would: parse_file streams,
        # load_into feeds the store directly — no intermediate Graph.
        engine = SparqlEngine(IN_MEMORY_OPTIMIZED)
        count = load_into(engine.store, path)
        print(f"\nreloaded {count} triples into the {engine.config.name} engine")

        # Catalog queries work on the reloaded document.
        print(f"Q1  -> {engine.query(get_query('Q1').text).rows()}")
        print(f"Q11 -> {len(engine.query(get_query('Q11').text))} electronic editions")

        # A hand-written negation query in the Q6/Q7 style: conferences
        # (proceedings) for which no inproceedings was generated.
        orphans = engine.query(
            """
            SELECT ?title WHERE {
              ?proc rdf:type bench:Proceedings .
              ?proc dc:title ?title
              OPTIONAL {
                ?paper rdf:type bench:Inproceedings .
                ?paper dcterms:partOf ?proc2
                FILTER (?proc2 = ?proc)
              }
              FILTER (!bound(?paper))
            }
            """
        )
        print(f"\nconferences without papers: {len(orphans)}")

        # Container access in the Q7 style: documents referenced from any
        # rdf:Bag reference list, together with the citing document.
        cited = engine.query(
            """
            SELECT DISTINCT ?cited ?citing WHERE {
              ?citing dcterms:references ?bag .
              ?bag ?member ?cited .
              ?cited rdf:type ?class
            }
            """
        )
        print(f"citation edges resolvable through rdf:Bag containers: {len(cited)}")


if __name__ == "__main__":
    main()
