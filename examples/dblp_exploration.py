"""Bibliographic exploration: the social-network queries that motivate SP2Bench.

The paper chooses DBLP because it reflects social-world distributions (the
citation system, coauthor networks, the Erdoes number).  This example uses
the public API to explore exactly those relations on generated data:

* the Erdoes number 1 and 2 neighbourhood (Q8),
* debut authors per year (the Q6 closed-world-negation request),
* the most cited publications (the incoming-citation power law),
* venue sizes (inproceedings per conference).

Run with::

    python examples/dblp_exploration.py
"""

from collections import Counter

from repro import DblpGenerator, GeneratorConfig, SparqlEngine, get_query


def erdoes_neighbourhood(engine):
    result = engine.query(get_query("Q8").text)
    names = sorted(str(binding.get("name")) for binding in result)
    print(f"Erdoes number 1 or 2: {len(names)} persons")
    for name in names[:10]:
        print(f"  {name}")
    if len(names) > 10:
        print(f"  ... and {len(names) - 10} more")


def debut_authors_by_year(engine):
    result = engine.query(get_query("Q6").text)
    per_year = Counter()
    for binding in result:
        per_year[binding.get("yr").to_python()] += 1
    print("\nPublications by debut authors, per year (Q6):")
    for year in sorted(per_year):
        print(f"  {year}: {per_year[year]:4d} publications  {'#' * min(per_year[year] // 5, 40)}")


def most_cited_publications(engine):
    # Incoming citations are modelled through rdf:Bag membership; count the
    # bag members pointing at each document and join with the title.  The
    # aggregation consumes a streaming cursor — no materialized result list
    # ever exists, only the running counters.
    cursor = engine.stream(
        """
        SELECT ?title ?doc WHERE {
          ?doc dc:title ?title .
          ?bag ?member ?doc .
          ?citing dcterms:references ?bag
        }
        """
    )
    counts = Counter()
    titles = {}
    for binding in cursor:
        doc = str(binding.get("doc"))
        counts[doc] += 1
        titles[doc] = str(binding.get("title"))
    print("\nMost cited publications (incoming-citation power law):")
    for doc, count in counts.most_common(5):
        print(f"  {count:3d} citations  {titles[doc][:60]}")


def venue_sizes(engine):
    result = engine.query(
        """
        SELECT ?conference ?paper WHERE {
          ?paper rdf:type bench:Inproceedings .
          ?paper dcterms:partOf ?proc .
          ?proc dc:title ?conference
        }
        """
    )
    sizes = Counter(str(binding.get("conference")) for binding in result)
    print("\nLargest conferences (inproceedings per proceedings):")
    for conference, count in sizes.most_common(5):
        print(f"  {count:3d} papers  {conference}")


def main():
    generator = DblpGenerator(GeneratorConfig(triple_limit=8_000))
    graph = generator.graph()
    stats = generator.statistics.as_dict()
    print(f"document: {stats['triples']} triples, data up to {stats['data_up_to_year']}")

    engine = SparqlEngine.from_graph(graph)
    erdoes_neighbourhood(engine)
    debut_authors_by_year(engine)
    most_cited_publications(engine)
    venue_sizes(engine)


if __name__ == "__main__":
    main()
