"""Serve a generated document over the SPARQL Protocol and load-test it.

Shows the serving subsystem end to end, in-process: build an engine over a
read-only store, expose it as a W3C SPARQL Protocol endpoint
(``GET/POST /sparql``) on a thread worker pool, query it over HTTP in each
of the four result formats, exercise the structured error responses, and
finally replay a closed-loop multi-client workload against the endpoint —
the programmatic equivalents of ``repro serve`` and ``repro loadtest``.

Run with::

    python examples/serve_and_query.py
"""

import json
import urllib.error
import urllib.parse
import urllib.request

from repro import SparqlEngine, SparqlServer, generate_graph, get_query
from repro.bench import WorkloadMix, reporting, run_http_workload


def fetch(url, data=None, headers=None):
    request = urllib.request.Request(url, data=data, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def main():
    # 1. One read-only store, loaded once, shared by every server worker.
    engine = SparqlEngine.from_graph(generate_graph(triple_limit=5_000))
    print(f"engine ready: {engine!r}")

    # 2. Serve it.  port=0 binds an ephemeral port; the context manager
    #    runs the listener on a background thread and stops it on exit.
    with SparqlServer(engine, port=0, workers=4, default_timeout=10.0) as server:
        print(f"serving at {server.url}\n")

        # 3. GET with a URL-encoded query, JSON results (the default).
        q1 = get_query("Q1").text
        status, body = fetch(
            f"{server.url}?{urllib.parse.urlencode({'query': q1})}"
        )
        year = json.loads(body)["results"]["bindings"][0]["yr"]["value"]
        print(f"GET Q1 -> {status}, year of Journal 1 (1940): {year}")

        # 4. POST the query text directly; negotiate each result format.
        for accept in ("application/sparql-results+json",
                       "application/sparql-results+xml",
                       "text/csv",
                       "text/tab-separated-values"):
            status, body = fetch(
                server.url,
                data=q1.encode("utf-8"),
                headers={"Content-Type": "application/sparql-query",
                         "Accept": accept},
            )
            first_line = body.splitlines()[0][:72]
            print(f"POST Q1 as {accept.split('/')[-1]:<24} -> {status}: {first_line}")

        # 5. Failures are structured JSON payloads, never tracebacks: a
        #    malformed query is a 400, an expired deadline is a 503.
        status, body = fetch(
            f"{server.url}?{urllib.parse.urlencode({'query': 'NOT SPARQL'})}"
        )
        print(f"\nmalformed query -> {status}: {json.loads(body)['error']['code']}")
        status, body = fetch(
            f"{server.url}?{urllib.parse.urlencode({'query': q1, 'timeout': 0})}"
        )
        print(f"zero deadline   -> {status}: {json.loads(body)['error']['code']}")

        # 6. A closed-loop load test over HTTP: 3 clients replay a weighted
        #    mix for a second; the report gives QpS and tail latencies.
        mix = WorkloadMix.from_catalog({"Q1": 4, "Q10": 2, "Q3a": 1, "Q12c": 1})
        report = run_http_workload(
            server.url, mix=mix, clients=3, duration=1.0, timeout=5.0
        )
        print(f"\n{reporting.workload_summary(report)}")
        print(reporting.workload_table(report))

    print("\nserver stopped cleanly")


if __name__ == "__main__":
    main()
