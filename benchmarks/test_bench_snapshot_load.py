"""Snapshot loading versus generate+insert — the dataset pipeline payoff.

The paper reports loading times separately from query times because native
engines amortize the physical database build (Section V); our equivalent is
the store snapshot: generate + insert once, then every later run rebuilds
the fully indexed store from the ``.sp2b`` file.  This bench measures both
sides on the same document and asserts the amortization is real: at the
25k-triple acceptance size, loading the snapshot must be at least 5x faster
than generating the document and inserting it triple by triple.

``SP2B_SNAPSHOT_TRIPLES`` scales the document for smoke runs; the speedup
assertion only applies at the full size, where the fixed costs of both
paths are dominated by per-triple work.
"""

import gc
import os
import time

import pytest

from repro.generator import DblpGenerator, GeneratorConfig
from repro.store import IndexedStore, load_snapshot, save_snapshot

#: Document size for the comparison; override for scaled-down runs.
SNAPSHOT_BENCH_TRIPLES = int(os.environ.get("SP2B_SNAPSHOT_TRIPLES", "25000"))

#: Acceptance bar: snapshot load at least this much faster than a fresh
#: generate+insert build at the full document size.
REQUIRED_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def built_snapshot(tmp_path_factory):
    """Generate+insert once (timed) and snapshot the built store."""
    config = GeneratorConfig(triple_limit=SNAPSHOT_BENCH_TRIPLES, seed=823645187)
    start = time.perf_counter()
    store = IndexedStore()
    DblpGenerator(config).generate_into(store)
    build_time = time.perf_counter() - start

    path = tmp_path_factory.mktemp("snapshots") / "document.sp2b"
    start = time.perf_counter()
    save_snapshot(store, path)
    save_time = time.perf_counter() - start
    return store, path, build_time, save_time


def test_snapshot_load_beats_generate_and_insert(benchmark, built_snapshot):
    """Loading the cached snapshot is >= 5x faster than rebuilding from scratch."""
    store, path, build_time, save_time = built_snapshot

    # Timed region covers the load only: dropping the previous round's
    # store frees ~100k containers, which must happen (with a collector
    # pass) *before* the clock starts, not inside the measurement.
    load_times = []
    loaded = None
    for _round in range(4):
        if loaded is not None:
            del loaded
            loaded = None
            gc.collect()
        start = time.perf_counter()
        loaded = load_snapshot(path)
        load_times.append(time.perf_counter() - start)
    load_time = min(load_times)

    # The pytest-benchmark entry (informational; the gate watches queries).
    benchmark.pedantic(lambda: load_snapshot(path), rounds=2, iterations=1)

    # The loaded store is the built store, not an approximation of it.
    assert len(loaded) == len(store)
    assert loaded.statistics == store.statistics
    assert set(loaded.triples()) == set(store.triples())

    speedup = build_time / max(load_time, 1e-9)
    print(
        f"\nSnapshot pipeline at {SNAPSHOT_BENCH_TRIPLES} triples: "
        f"generate+insert={build_time:.3f}s save={save_time:.3f}s "
        f"load={load_time:.3f}s speedup={speedup:.1f}x "
        f"({os.path.getsize(path) / 1e6:.2f} MB on disk)"
    )
    if SNAPSHOT_BENCH_TRIPLES >= 25_000:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"snapshot load only {speedup:.1f}x faster than generate+insert "
            f"(required {REQUIRED_SPEEDUP}x)"
        )


def test_snapshot_save_cost_is_amortizable(benchmark, built_snapshot):
    """Saving costs a fraction of the build it amortizes (informational)."""
    store, path, build_time, save_time = built_snapshot
    benchmark.pedantic(
        lambda: save_snapshot(store, path), rounds=2, iterations=1
    )
    # Build + save must stay in the same ballpark as build alone, otherwise
    # the cold-cache path would noticeably regress versus no caching at all.
    assert save_time < build_time
