"""Table VIII — characteristics of generated documents.

For each document size the paper reports the final simulated year, author
counts, and per-class instance counts.  The bench regenerates those
characteristics at the scaled sizes and checks the qualitative relationships
the paper highlights: articles and inproceedings dominate, theses/WWW
documents are missing in the early years, authors grow superlinearly.
"""


from repro.analysis import DocumentSetStatistics

from conftest import BENCH_DOCUMENT_SIZES


def test_table8_document_characteristics(benchmark, bench_documents):
    """Regenerate Table VIII from the shared benchmark documents."""
    largest = BENCH_DOCUMENT_SIZES[-1]
    graph, _time, _stats = bench_documents[largest]

    # The timed operation: measuring one document's characteristics.
    statistics = benchmark.pedantic(
        lambda: DocumentSetStatistics(graph), rounds=1, iterations=1
    )

    rows = []
    for size in BENCH_DOCUMENT_SIZES:
        doc_graph, _gen_time, _gen_stats = bench_documents[size]
        doc_stats = DocumentSetStatistics(doc_graph)
        summary = doc_stats.summary()
        rows.append((size, summary))

    header = ("#triples", "up to", "tot.auth", "dist.auth", "journal", "article",
              "proc", "inproc", "incoll", "book", "phd", "masters", "www")
    print("\nTable VIII — characteristics of generated documents")
    print("  ".join(f"{h:>9}" for h in header))
    for size, summary in rows:
        counts = summary["class_counts"]
        print("  ".join(f"{value:>9}" for value in (
            size, summary["data_up_to_year"], summary["total_authors"],
            summary["distinct_authors"],
            counts.get("journal", 0), counts.get("article", 0),
            counts.get("proceedings", 0), counts.get("inproceedings", 0),
            counts.get("incollection", 0), counts.get("book", 0),
            counts.get("phdthesis", 0), counts.get("mastersthesis", 0),
            counts.get("www", 0),
        )))

    # Shape assertions mirroring the paper's observations.
    small_summary = rows[0][1]
    large_summary = rows[-1][1]
    assert large_summary["data_up_to_year"] >= small_summary["data_up_to_year"]
    assert large_summary["total_authors"] > small_summary["total_authors"]
    assert large_summary["total_authors"] >= large_summary["distinct_authors"]
    large_counts = large_summary["class_counts"]
    assert large_counts.get("article", 0) + large_counts.get("inproceedings", 0) > \
        5 * (large_counts.get("book", 0) + large_counts.get("incollection", 0) + 1)
    # Early documents contain no theses or WWW entries (paper: missing classes
    # in the small documents).
    assert rows[0][1]["class_counts"].get("phdthesis", 0) == 0
    assert rows[0][1]["class_counts"].get("www", 0) == 0
    assert statistics.class_counts()
