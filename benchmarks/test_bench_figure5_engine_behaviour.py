"""Figure 5 — the engine behaviours the paper singles out for discussion.

Top row (in-memory engines): Q5a vs Q5b (implicit vs explicit join), Q6/Q7
(negation), Q12a (ASK).  Bottom row (native engines): loading time, Q2
(growing bushy pattern), Q3a vs Q3c (filter selectivity and index choice),
Q10 (constant-time object lookup).

Each check asserts the qualitative relationship visible in the published
plots rather than absolute numbers.
"""


from repro.queries import get_query

from conftest import BENCH_DOCUMENT_SIZES


def _elapsed(report, engine, query_id, size):
    measurements = report.measurements_for(engine=engine, size=size, query_id=query_id)
    assert measurements, (engine, query_id, size)
    return measurements[0].elapsed


def test_figure5_q5a_vs_q5b(benchmark, experiment_report, native_engine):
    """Q5a (implicit FILTER join) is costlier than Q5b (explicit join)."""
    benchmark.pedantic(
        lambda: native_engine.query(get_query("Q5b").text), rounds=1, iterations=1
    )
    largest = BENCH_DOCUMENT_SIZES[-1]
    print("\nFigure 5 — Q5a vs Q5b elapsed seconds on the largest document")
    for engine in experiment_report.engine_names():
        q5a = _elapsed(experiment_report, engine, "Q5a", largest)
        q5b = _elapsed(experiment_report, engine, "Q5b", largest)
        print(f"  {engine:>20}: Q5a={q5a:.3f}s Q5b={q5b:.3f}s")
    # On the unoptimized engines the implicit join costs clearly more.
    for engine in ("inmemory-baseline", "native-baseline"):
        q5a = _elapsed(experiment_report, engine, "Q5a", largest)
        q5b = _elapsed(experiment_report, engine, "Q5b", largest)
        assert q5a > q5b


def test_figure5_negation_queries_are_the_hardest(benchmark, experiment_report, native_engine):
    """Q6 (CWN) dominates the cheap queries by orders of magnitude."""
    benchmark.pedantic(
        lambda: native_engine.query(get_query("Q7").text), rounds=1, iterations=1
    )
    largest = BENCH_DOCUMENT_SIZES[-1]
    for engine in experiment_report.engine_names():
        q6 = _elapsed(experiment_report, engine, "Q6", largest)
        q1 = _elapsed(experiment_report, engine, "Q1", largest)
        assert q6 > 10 * q1, engine

    # Q7 touches the sparse citation system, so it stays far below Q6.
    q6 = _elapsed(experiment_report, "native-optimized", "Q6", largest)
    q7 = _elapsed(experiment_report, "native-optimized", "Q7", largest)
    print(f"\nFigure 5 — negation: Q6={q6:.3f}s Q7={q7:.3f}s (native-optimized)")
    assert q7 < q6


def test_figure5_q12a_ask_is_cheap(benchmark, experiment_report, native_engine):
    """Q12a finds a witness early; it never approaches Q5a's cost."""
    benchmark.pedantic(
        lambda: native_engine.query(get_query("Q12a").text), rounds=1, iterations=1
    )
    largest = BENCH_DOCUMENT_SIZES[-1]
    for engine in experiment_report.engine_names():
        q12a = _elapsed(experiment_report, engine, "Q12a", largest)
        q5a = _elapsed(experiment_report, engine, "Q5a", largest)
        # Scan-based engines materialize the pattern either way, so allow a
        # noise margin there; the index-backed engine must clearly benefit
        # from breaking at the first witness.  Sub-tenth-second timings are
        # dominated by fixed per-query overheads rather than join work, so
        # the ratio is only meaningful above that floor (smoke runs at tiny
        # document sizes would otherwise compare noise against noise).
        assert q12a <= max(q5a, 0.1) * 1.3, engine
    native_q12a = _elapsed(experiment_report, "native-optimized", "Q12a", largest)
    native_q5a = _elapsed(experiment_report, "native-optimized", "Q5a", largest)
    # Same noise floor as above: at smoke scale both timings sit in the
    # fixed-overhead regime where a strict comparison is a coin flip.
    assert native_q12a < max(native_q5a, 0.1)


def test_figure5_native_engine_constant_time_queries(benchmark, experiment_report,
                                                     native_engine):
    """Q1/Q3c/Q10 stay flat across document sizes on the index-backed engine,
    while Q2 grows with the document (superlinear result construction)."""
    benchmark.pedantic(
        lambda: native_engine.query(get_query("Q10").text), rounds=1, iterations=1
    )
    smallest, largest = BENCH_DOCUMENT_SIZES[0], BENCH_DOCUMENT_SIZES[-1]
    size_ratio = largest / smallest

    print("\nFigure 5 — native engine scaling (elapsed seconds)")
    for query_id in ("Q1", "Q3c", "Q10", "Q12c", "Q2"):
        series = [
            (_elapsed(experiment_report, "native-optimized", query_id, size), size)
            for size in BENCH_DOCUMENT_SIZES
        ]
        print(f"  {query_id:>4}: " + "  ".join(f"{t:.4f}s@{s}" for t, s in series))

    # Point lookups answered from the indexes stay (near-)constant: their
    # growth is clearly below the document-size ratio.  (Q10's result itself
    # still grows until Paul Erdoes retires in 1996, and Q3c scans the
    # article class, so — as for the paper's Sesame — those two are checked
    # only against the in-memory engine below.)
    for query_id in ("Q1", "Q12c"):
        small_time = _elapsed(experiment_report, "native-optimized", query_id, smallest)
        large_time = _elapsed(experiment_report, "native-optimized", query_id, largest)
        assert large_time < max(small_time, 0.002) * size_ratio * 0.6, query_id

    # The index-backed engine beats the scan-based engine on Q3c and Q10 for
    # the largest document (Figure 5 bottom row).
    for query_id in ("Q3c", "Q10"):
        native_time = _elapsed(experiment_report, "native-optimized", query_id, largest)
        memory_time = _elapsed(experiment_report, "inmemory-baseline", query_id, largest)
        assert native_time < memory_time, query_id

    # Q2's result grows with the document, so its cost must grow too.
    q2_small = _elapsed(experiment_report, "native-optimized", "Q2", smallest)
    q2_large = _elapsed(experiment_report, "native-optimized", "Q2", largest)
    assert q2_large > q2_small


def test_figure5_inmemory_engines_scale_with_document(benchmark, experiment_report,
                                                      native_engine):
    """On the scan-based engines even Q1/Q12c cost grows with document size."""
    benchmark.pedantic(
        lambda: native_engine.query(get_query("Q12c").text), rounds=1, iterations=1
    )
    smallest, largest = BENCH_DOCUMENT_SIZES[0], BENCH_DOCUMENT_SIZES[-1]
    grew = 0
    for query_id in ("Q1", "Q12c", "Q3a"):
        small_time = _elapsed(experiment_report, "inmemory-baseline", query_id, smallest)
        large_time = _elapsed(experiment_report, "inmemory-baseline", query_id, largest)
        if large_time > small_time:
            grew += 1
    assert grew >= 2, "scan-based evaluation should grow with document size"
