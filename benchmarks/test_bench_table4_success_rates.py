"""Table IV — success rates per engine, query, and document size.

With a scaled-down per-query timeout, the success matrix reproduces the
paper's qualitative picture: the cheap index-friendly queries succeed
everywhere while the hard queries (Q4, Q5a, Q6 — joins over large
intermediate results and closed-world negation) are the first to hit the
timeout, and they hit it earlier on the scan-based in-memory engines than on
the index-backed ones.
"""


from repro.bench import reporting
from repro.bench.metrics import SUCCESS
from repro.queries import get_query


EASY_QUERIES = ("Q1", "Q3c", "Q9", "Q10", "Q11", "Q12c")
HARD_QUERIES = ("Q4", "Q5a", "Q6")


def test_table4_success_rates(benchmark, experiment_report, native_engine):
    """Regenerate Table IV for every engine preset."""
    benchmark.pedantic(
        lambda: native_engine.query(get_query("Q1").text), rounds=1, iterations=1
    )

    print("\nTable IV — success rates (+ success, T timeout, M memory, E error)")
    for engine in experiment_report.engine_names():
        print(f"\n[{engine}]")
        print(reporting.success_rate_table(experiment_report, engine))

    # The easy queries succeed for every engine and size.
    for engine in experiment_report.engine_names():
        for query_id in EASY_QUERIES:
            measurements = experiment_report.measurements_for(engine=engine, query_id=query_id)
            assert measurements
            assert all(m.status == SUCCESS for m in measurements), (engine, query_id)

    # No query errors out: failures, if any, are timeouts (our engines are
    # standard compliant for the SP2Bench fragment, unlike Virtuoso on Q6).
    assert all(m.status in (SUCCESS, "timeout") for m in experiment_report.measurements)

    # The hard queries consume (by far) the most time; if any timeout occurs
    # at all it occurs for one of them.
    timeouts = [m for m in experiment_report.measurements if m.status == "timeout"]
    assert all(m.query_id in HARD_QUERIES + ("Q8", "Q12b", "Q7", "Q2") for m in timeouts)

    # Scan-based engines never beat the index-backed engine on total success.
    native_rate = experiment_report.success_rate("native-optimized")["success_ratio"]
    memory_rate = experiment_report.success_rate("inmemory-baseline")["success_ratio"]
    assert native_rate >= memory_rate
