"""Shared fixtures for the benchmark suite.

The benches reproduce the paper's tables and figures at laptop scale.  One
full experiment (all 17 queries x all 4 engine configurations x the scaled
document sizes) is executed once per session and shared by the table/figure
benches; each bench additionally times a representative operation through
pytest-benchmark so that ``--benchmark-only`` reports meaningful numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import BenchmarkHarness, ExperimentConfig
from repro.generator import DblpGenerator, GeneratorConfig
from repro.queries import ALL_QUERIES
from repro.sparql import ENGINE_PRESETS, NATIVE_OPTIMIZED, SparqlEngine

#: Scaled-down document sizes standing in for the paper's 10k...25M triples.
#: The smallest size must still reach the year 1940 so that the fixed query
#: entry points (Journal 1 (1940), Paul Erdoes) exist, as in the paper.
#: ``SP2B_BENCH_SIZES`` (comma-separated triple counts) overrides the sweep,
#: which CI uses for a smallest-document smoke run.
_ENV_SIZES = os.environ.get("SP2B_BENCH_SIZES")
if _ENV_SIZES:
    BENCH_DOCUMENT_SIZES = tuple(int(size) for size in _ENV_SIZES.split(","))
else:
    BENCH_DOCUMENT_SIZES = (1_000, 2_500, 5_000)

#: Per-query timeout (seconds); the paper uses 30 minutes on native engines.
BENCH_TIMEOUT = 5.0

#: The dataset cache the benches resolve documents through, so a sweep
#: builds each size at most once per machine (and CI restores the directory
#: from actions/cache).  ``SP2B_CACHE_DIR`` moves it; ``SP2B_NO_CACHE=1``
#: restores the old generate-every-run behaviour.
if os.environ.get("SP2B_NO_CACHE"):
    BENCH_CACHE_DIR = None
else:
    from repro.cache import default_cache_dir

    BENCH_CACHE_DIR = str(default_cache_dir())


@pytest.fixture(scope="session")
def bench_documents():
    """Shared benchmark documents: size -> (document, setup time, stats).

    Resolved through the dataset cache: the first run of a size generates
    and snapshots it, every later run (and every other bench session on the
    machine) loads the snapshot.
    """
    config = ExperimentConfig(
        document_sizes=BENCH_DOCUMENT_SIZES, cache_dir=BENCH_CACHE_DIR
    )
    return BenchmarkHarness(config).generate_documents()


@pytest.fixture(scope="session")
def experiment_report(bench_documents):
    """The full SP2Bench experiment over all queries, engines, and sizes."""
    config = ExperimentConfig(
        document_sizes=BENCH_DOCUMENT_SIZES,
        engines=ENGINE_PRESETS,
        queries=ALL_QUERIES,
        timeout=BENCH_TIMEOUT,
        trace_memory=True,
        cache_dir=BENCH_CACHE_DIR,
    )
    return BenchmarkHarness(config).run(bench_documents)


@pytest.fixture(scope="session")
def medium_graph(bench_documents):
    """The largest shared benchmark document (an iterable of triples)."""
    graph, _time, _stats = bench_documents[BENCH_DOCUMENT_SIZES[-1]]
    return graph


@pytest.fixture(scope="session")
def native_engine(medium_graph):
    return SparqlEngine.from_graph(medium_graph, NATIVE_OPTIMIZED)


def generate_document(size, seed=823645187):
    """Helper used by generation benches."""
    generator = DblpGenerator(GeneratorConfig(triple_limit=size, seed=seed))
    count = sum(1 for _ in generator.triples())
    return count, generator.statistics
