"""Shared fixtures for the benchmark suite.

The benches reproduce the paper's tables and figures at laptop scale.  One
full experiment (all 17 queries x all 4 engine configurations x the scaled
document sizes) is executed once per session and shared by the table/figure
benches; each bench additionally times a representative operation through
pytest-benchmark so that ``--benchmark-only`` reports meaningful numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import BenchmarkHarness, ExperimentConfig
from repro.generator import DblpGenerator, GeneratorConfig
from repro.queries import ALL_QUERIES
from repro.sparql import ENGINE_PRESETS, NATIVE_OPTIMIZED, SparqlEngine

#: Scaled-down document sizes standing in for the paper's 10k...25M triples.
#: The smallest size must still reach the year 1940 so that the fixed query
#: entry points (Journal 1 (1940), Paul Erdoes) exist, as in the paper.
#: ``SP2B_BENCH_SIZES`` (comma-separated triple counts) overrides the sweep,
#: which CI uses for a smallest-document smoke run.
_ENV_SIZES = os.environ.get("SP2B_BENCH_SIZES")
if _ENV_SIZES:
    BENCH_DOCUMENT_SIZES = tuple(int(size) for size in _ENV_SIZES.split(","))
else:
    BENCH_DOCUMENT_SIZES = (1_000, 2_500, 5_000)

#: Per-query timeout (seconds); the paper uses 30 minutes on native engines.
BENCH_TIMEOUT = 5.0


@pytest.fixture(scope="session")
def bench_documents():
    """Pre-generated documents shared by all benches: size -> (graph, time, stats)."""
    config = ExperimentConfig(document_sizes=BENCH_DOCUMENT_SIZES)
    return BenchmarkHarness(config).generate_documents()


@pytest.fixture(scope="session")
def experiment_report(bench_documents):
    """The full SP2Bench experiment over all queries, engines, and sizes."""
    config = ExperimentConfig(
        document_sizes=BENCH_DOCUMENT_SIZES,
        engines=ENGINE_PRESETS,
        queries=ALL_QUERIES,
        timeout=BENCH_TIMEOUT,
        trace_memory=True,
    )
    return BenchmarkHarness(config).run(bench_documents)


@pytest.fixture(scope="session")
def medium_graph(bench_documents):
    """The largest shared benchmark document."""
    graph, _time, _stats = bench_documents[BENCH_DOCUMENT_SIZES[-1]]
    return graph


@pytest.fixture(scope="session")
def native_engine(medium_graph):
    return SparqlEngine.from_graph(medium_graph, NATIVE_OPTIMIZED)


def generate_document(size, seed=823645187):
    """Helper used by generation benches."""
    generator = DblpGenerator(GeneratorConfig(triple_limit=size, seed=seed))
    count = sum(1 for _ in generator.triples())
    return count, generator.statistics
