"""Ablation — id-space versus term-space evaluation on the indexed store.

The id-space pipeline (see DESIGN.md) joins over dictionary-encoded integer
ids and decodes terms only at the result boundary, the way the paper's native
engines (Sesame-native, Virtuoso) do.  This bench runs the Q1/Q2/Q4/Q6 mix on
one shared :class:`~repro.store.IndexedStore` through both solution
representations and records the speedup ratio in the report output.

The document size defaults to 25k triples (the acceptance configuration) and
can be scaled down for smoke runs via ``SP2B_IDSPACE_TRIPLES``; the >= 2x
speedup assertion only applies at the full size, where join costs dominate
fixed overheads.
"""

import os
import time
from dataclasses import replace

import pytest

from repro.generator import DblpGenerator, GeneratorConfig
from repro.queries import get_query
from repro.sparql import NATIVE_OPTIMIZED, SparqlEngine

#: Document size for the comparison; override for CI smoke runs.
IDSPACE_BENCH_TRIPLES = int(os.environ.get("SP2B_IDSPACE_TRIPLES", "25000"))

#: The query mix: point lookup (Q1), wide OPTIONAL scan with ORDER BY (Q2),
#: the join-heavy DISTINCT chain (Q4), closed-world negation (Q6).
MIX = ("Q1", "Q2", "Q4", "Q6")


@pytest.fixture(scope="module")
def paired_engines():
    """Two engines over one shared indexed store: id-space and term-space."""
    graph = DblpGenerator(
        GeneratorConfig(triple_limit=IDSPACE_BENCH_TRIPLES, seed=823645187)
    ).graph()
    id_engine = SparqlEngine.from_graph(graph, NATIVE_OPTIMIZED)
    term_engine = SparqlEngine(
        replace(NATIVE_OPTIMIZED, name="native-term-space", use_id_space=False)
    )
    # Share the loaded store so both paths see identical data and dictionary.
    term_engine.store = id_engine.store
    return id_engine, term_engine


def _timed(engine, query_id):
    start = time.perf_counter()
    result = engine.query(get_query(query_id).text)
    return time.perf_counter() - start, result


def test_idspace_speedup_on_query_mix(benchmark, paired_engines):
    """Id-space evaluation beats the term-space path on the Q1/Q2/Q4/Q6 mix."""
    id_engine, term_engine = paired_engines
    benchmark.pedantic(
        lambda: id_engine.query(get_query("Q2").text), rounds=1, iterations=1
    )

    print(
        f"\nId-space vs term-space evaluation, IndexedStore, "
        f"{IDSPACE_BENCH_TRIPLES} triples (elapsed seconds)"
    )
    total_id = total_term = 0.0
    for query_id in MIX:
        id_time, id_result = _timed(id_engine, query_id)
        term_time, term_result = _timed(term_engine, query_id)
        total_id += id_time
        total_term += term_time
        ratio = term_time / max(id_time, 1e-9)
        print(
            f"  {query_id:>3}: term={term_time:.3f}s id={id_time:.3f}s "
            f"speedup={ratio:.1f}x rows={len(id_result)}"
        )
        # The representations must never change the result.
        assert id_result.as_multiset() == term_result.as_multiset()

    speedup = total_term / max(total_id, 1e-9)
    print(
        f"  mix: term={total_term:.2f}s id={total_id:.2f}s "
        f"speedup={speedup:.1f}x"
    )
    if IDSPACE_BENCH_TRIPLES >= 25_000:
        # Acceptance bar: the id-space pipeline at least halves the mix time.
        assert speedup >= 2.0


def test_idspace_point_lookup_stays_fast(benchmark, paired_engines):
    """Q1 stays (near-)constant time on the id path — the native profile."""
    id_engine, _term_engine = paired_engines
    result = benchmark(lambda: id_engine.query(get_query("Q1").text))
    assert len(result) == 1
