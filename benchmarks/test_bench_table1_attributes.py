"""Tables I and IX — attribute probability distribution per document class.

The generator's input constants come straight from Table IX; this bench
measures the probabilities back from a generated document and prints the
paper value next to the measured value for the attribute/class pairs that
Table I highlights.
"""

import pytest

from repro.analysis import DocumentSetStatistics
from repro.generator import attribute_probability

#: The (attribute, class) pairs shown in Table I of the paper.
TABLE1_PAIRS = (
    ("author", "article"), ("author", "inproceedings"), ("author", "book"),
    ("cite", "article"), ("cite", "inproceedings"),
    ("editor", "proceedings"),
    ("isbn", "proceedings"), ("isbn", "book"),
    ("journal", "article"),
    ("month", "article"),
    ("pages", "article"), ("pages", "inproceedings"),
    ("title", "article"), ("title", "inproceedings"), ("title", "proceedings"),
)


def test_table1_attribute_probabilities(benchmark, medium_graph):
    """Measured attribute probabilities track the Table I/IX inputs."""
    statistics = benchmark.pedantic(
        lambda: DocumentSetStatistics(medium_graph), rounds=1, iterations=1
    )

    class_counts = statistics.class_counts()
    print("\nTable I — attribute probabilities (paper value vs. measured)")
    print(f"{'attribute':>10} {'class':>15} {'paper':>8} {'measured':>9} {'n':>6}")
    mismatches = []
    checked = 0
    for attribute, document_class in TABLE1_PAIRS:
        paper_value = attribute_probability(attribute, document_class)
        measured = statistics.attribute_probability(attribute, document_class)
        instances = class_counts.get(document_class, 0)
        print(f"{attribute:>10} {document_class:>15} {paper_value:>8.4f} "
              f"{measured:>9.4f} {instances:>6}")
        if instances < 20:
            # Sampling noise dominates for rare classes on the scaled document
            # (the paper measures on >= 10k-triple documents).
            continue
        checked += 1
        # Attributes with certain or impossible probabilities must match
        # exactly; the rest within a sampling tolerance.
        if paper_value in (0.0, 1.0):
            if measured != pytest.approx(paper_value, abs=1e-9):
                mismatches.append((attribute, document_class, paper_value, measured))
        elif abs(measured - paper_value) > 0.12:
            mismatches.append((attribute, document_class, paper_value, measured))
    assert checked >= 6, "too few attribute/class pairs had enough instances to check"
    assert not mismatches, f"attribute probabilities diverge: {mismatches}"


def test_q3_filter_selectivities_mirror_table1(benchmark, native_engine):
    """The Q3a/Q3b/Q3c result sizes follow the pages/month/isbn probabilities."""
    from repro.queries import get_query

    q3a = benchmark.pedantic(
        lambda: native_engine.query(get_query("Q3a").text), rounds=1, iterations=1
    )
    q3b = native_engine.query(get_query("Q3b").text)
    q3c = native_engine.query(get_query("Q3c").text)
    articles = native_engine.query(
        "SELECT ?a WHERE { ?a rdf:type bench:Article }"
    )
    print(f"\nQ3 selectivities on {len(articles)} articles: "
          f"Q3a={len(q3a)} Q3b={len(q3b)} Q3c={len(q3c)}")
    assert len(q3a) > len(q3b) >= len(q3c) == 0
    # Q3a retains roughly the pages probability (92.61% in the paper).
    assert len(q3a) / max(len(articles), 1) > 0.75
