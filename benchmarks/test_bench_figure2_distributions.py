"""Figure 2 — the DBLP distributions the generator mirrors.

(a) distribution of outgoing citations per citing document (Gaussian),
(b) document-class instances per year (logistic growth),
(c) number of authors with x publications (power law).

The bench prints the fitted-model series next to the series measured from a
generated document and asserts the qualitative shape for each subfigure.
"""

import pytest

from repro.analysis import (
    citation_distribution_series,
    document_class_series,
    publication_count_series,
)
from repro.generator import DblpGenerator, GeneratorConfig


@pytest.fixture(scope="module")
def citation_rich_graph():
    """A document generated with every citation targeted, so Figure 2(a) has
    enough mass to compare against the Gaussian model."""
    generator = DblpGenerator(GeneratorConfig(triple_limit=6_000, seed=101))
    generator._citations._untargeted_fraction = 0.0
    return generator.graph()


def test_figure2a_citation_distribution(benchmark, citation_rich_graph):
    """Fig. 2(a): outgoing citations per citing document follow d_cite."""
    series = benchmark.pedantic(
        lambda: citation_distribution_series(citation_rich_graph, max_citations=50),
        rounds=1, iterations=1,
    )
    model = dict(series["model"])
    measured = dict(series["measured"] or [])
    print("\nFigure 2(a) — P(x citations): x, model, measured")
    for x in (1, 5, 10, 17, 25, 40):
        print(f"  {x:>3}  {model[x]:.4f}  {measured.get(x, 0.0):.4f}")
    # Model shape: peak near mu=16.82.
    assert model[17] > model[3]
    assert model[17] > model[40]
    # Measured mass concentrates in the model's central region (5..35).
    central = sum(p for x, p in measured.items() if 5 <= x <= 35)
    tails = sum(p for x, p in measured.items() if x < 5 or x > 35)
    if measured:
        assert central >= tails


def test_figure2b_document_class_growth(benchmark, medium_graph):
    """Fig. 2(b): class instances per year follow the logistic curves."""
    from repro.analysis import DocumentSetStatistics

    # Restrict the series to the years the scaled document actually covers.
    last_year = DocumentSetStatistics(medium_graph).last_year()
    years = tuple(range(1940, last_year + 1))
    series = benchmark.pedantic(
        lambda: document_class_series(medium_graph, years=years),
        rounds=1, iterations=1,
    )
    model = series["model"]
    measured = series["measured"]
    print("\nFigure 2(b) — instances per year (measured, largest shared document)")
    for name in ("journal", "article", "proceedings", "inproceedings"):
        counts = dict(measured[name])
        nonzero = {year: count for year, count in counts.items() if count}
        print(f"  {name:>14}: {sorted(nonzero.items())[:8]}")
    # Articles grow over the simulated years.
    article_counts = [count for _year, count in measured["article"]]
    first_half = sum(article_counts[: len(article_counts) // 2])
    second_half = sum(article_counts[len(article_counts) // 2:])
    assert second_half > first_half
    # The model curves keep the paper's ordering: inproceedings above
    # proceedings, articles above journals (checked at the last covered year).
    assert dict(model["article"])[last_year] > dict(model["journal"])[last_year]
    assert dict(model["inproceedings"])[last_year] > dict(model["proceedings"])[last_year]


def test_figure2c_publication_counts(benchmark, medium_graph):
    """Fig. 2(c): authors-with-x-publications is power-law shaped."""
    series = benchmark.pedantic(
        lambda: publication_count_series(medium_graph), rounds=1, iterations=1
    )
    measured = dict(series["measured"])
    model = series["model"]
    print("\nFigure 2(c) — #authors with x publications (measured)")
    print("  " + ", ".join(f"x={x}: {measured.get(x, 0)}" for x in (1, 2, 3, 5, 10, 20)))
    # Long tail: single-publication authors dominate, very productive authors
    # exist but are rare.
    assert measured.get(1, 0) > measured.get(3, 0) > measured.get(10, 0)
    # The model moves upward over the years (paper: curves move up over time).
    assert dict(model[2005])[1] > dict(model[1975])[1]
