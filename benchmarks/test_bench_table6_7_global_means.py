"""Tables VI and VII — global performance (arithmetic/geometric means, memory).

Table VI covers the in-memory engines, Table VII the native engines.  The
bench prints both and checks the relationships the paper reports:

* the arithmetic mean is dominated by the penalized hard queries, while the
  geometric mean moderates those outliers (Ta >= Tg for every engine),
* the native (index-backed) engines achieve a better geometric mean than the
  scan-based in-memory engines — the paper's headline engine comparison.
"""


from repro.bench import reporting
from repro.queries import get_query

from conftest import BENCH_DOCUMENT_SIZES, BENCH_TIMEOUT


def test_tables6_and_7_global_performance(benchmark, experiment_report, native_engine):
    benchmark.pedantic(
        lambda: native_engine.query(get_query("Q9").text), rounds=1, iterations=1
    )

    print("\nTables VI/VII — arithmetic mean (Ta), geometric mean (Tg), memory (Ma)")
    print(reporting.global_performance_table(experiment_report))
    print("\nLoading times")
    print(reporting.loading_times_table(experiment_report))

    largest = BENCH_DOCUMENT_SIZES[-1]
    stats = {
        engine: experiment_report.global_performance(engine, largest, penalty=BENCH_TIMEOUT)
        for engine in experiment_report.engine_names()
    }

    # Ta >= Tg always (arithmetic-geometric mean inequality, and the paper's
    # observation that penalties hit Ta much harder).
    for engine, values in stats.items():
        assert values["arithmetic_mean_time"] >= values["geometric_mean_time"], engine
        assert values["geometric_mean_time"] > 0.0

    # Native engines beat in-memory engines on the geometric mean (paper:
    # SesameDB/Virtuoso vs ARQ/SesameM).
    native_best = min(
        stats[engine]["geometric_mean_time"]
        for engine in stats if engine.startswith("native")
    )
    memory_best = min(
        stats[engine]["geometric_mean_time"]
        for engine in stats if engine.startswith("inmemory")
    )
    assert native_best < memory_best

    # Loading an indexed store costs at least as much as loading the scan
    # store (index construction), mirroring the paper's loading-time metric.
    native_load = experiment_report.loading_times[("native-optimized", largest)]
    memory_load = experiment_report.loading_times[("inmemory-baseline", largest)]
    assert native_load >= memory_load * 0.5  # allow noise, but both are measured
