"""Multi-client throughput scaling — the serving subsystem's payoff.

The single-query benches measure latency; this bench measures *capacity*:
the closed-loop workload harness replays the default query mix against one
read-only 5k-triple snapshot-backed store and reports sustained QpS plus
p50/p95/p99 latency at 1 and at 4 workers.  Workers are processes (the
parent builds the engine once, clients inherit the store copy-on-write), so
the in-process harness scales with cores rather than serializing on the
GIL.  Acceptance: at the full document size on a machine with >= 4 cores,
4 workers must sustain at least 2x the QpS of 1 worker.

``SP2B_WORKLOAD_TRIPLES`` / ``SP2B_WORKLOAD_DURATION`` scale the document
and the per-point measurement window for smoke runs; the scaling assertion
only applies at the full size on sufficiently parallel hardware.
"""

import os

import pytest

from repro.bench.reporting import workload_table
from repro.bench.workload import (
    WorkloadMix,
    process_mode_available,
    run_engine_workload,
)
from repro.cache import DatasetCache
from repro.generator import GeneratorConfig
from repro.sparql import NATIVE_COST, SparqlEngine

#: The read-only document every client shares; 5k is the acceptance size.
WORKLOAD_BENCH_TRIPLES = int(os.environ.get("SP2B_WORKLOAD_TRIPLES", "5000"))

#: Seconds each closed-loop client issues queries per measured point.
WORKLOAD_BENCH_DURATION = float(os.environ.get("SP2B_WORKLOAD_DURATION", "2.0"))

#: Acceptance bar: QpS at 4 workers over QpS at 1 worker.
REQUIRED_SPEEDUP = 2.0

#: Cores needed before the speedup assertion is meaningful: four workers
#: cannot double a single worker's throughput on fewer than four cores.
REQUIRED_CORES = 4


@pytest.fixture(scope="module")
def shared_engine():
    """One snapshot-backed engine, built once before any client forks."""
    cache = DatasetCache()
    resolved = cache.resolve(
        GeneratorConfig(triple_limit=WORKLOAD_BENCH_TRIPLES, seed=823645187)
    )
    return SparqlEngine.from_store(resolved.store, NATIVE_COST)


@pytest.mark.skipif(not process_mode_available(),
                    reason="workload process mode requires the fork start method")
def test_workload_throughput_scales_with_workers(benchmark, shared_engine):
    """4 closed-loop workers sustain >= 2x the QpS of 1 on a shared store."""
    mix = WorkloadMix.from_catalog()
    reports = {}
    for clients in (1, 4):
        reports[clients] = run_engine_workload(
            shared_engine, mix=mix, clients=clients,
            duration=WORKLOAD_BENCH_DURATION, mode="process", seed=823,
        )

    # The pytest-benchmark entry (informational; the regression gate watches
    # the per-catalog-query benches): one short single-client burst.
    benchmark.pedantic(
        lambda: run_engine_workload(
            shared_engine, mix=mix, clients=1, duration=0.2,
            mode="process", seed=824,
        ),
        rounds=2, iterations=1,
    )

    for clients, report in sorted(reports.items()):
        print(f"\n{clients} worker(s): {report.qps():.1f} QpS sustained, "
              f"{report.total} requests "
              f"({report.timeouts} timeout / {report.errors} error)")
        print(workload_table(report))
        tails = report.percentiles()
        assert report.total > 0
        assert report.errors == 0
        assert 0 < tails["p50"] <= tails["p95"] <= tails["p99"]

    speedup = reports[4].qps() / max(reports[1].qps(), 1e-9)
    cores = os.cpu_count() or 1
    print(f"\nThroughput scaling at {WORKLOAD_BENCH_TRIPLES} triples: "
          f"{reports[1].qps():.1f} -> {reports[4].qps():.1f} QpS "
          f"({speedup:.2f}x at 4 workers, {cores} cores)")
    if WORKLOAD_BENCH_TRIPLES >= 5_000 and cores >= REQUIRED_CORES:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"4 workers only sustained {speedup:.2f}x the single-worker QpS "
            f"(required {REQUIRED_SPEEDUP}x on {cores} cores)"
        )
    elif cores < REQUIRED_CORES:
        print(f"(speedup assertion skipped: {cores} core(s) < "
              f"{REQUIRED_CORES} required for a meaningful 4-worker scaling)")


def test_workload_tail_latency_reported(benchmark, shared_engine):
    """Thread-mode smoke: the report carries per-query tails for every id."""
    mix = WorkloadMix.from_catalog({"Q1": 3, "Q10": 2, "Q12c": 1})
    report = benchmark.pedantic(
        lambda: run_engine_workload(
            shared_engine, mix=mix, clients=2, duration=0.3,
            mode="thread", seed=7,
        ),
        rounds=2, iterations=1,
    )
    assert report.errors == 0
    for query_id in report.query_ids():
        tails = report.percentiles(query_id=query_id)
        assert tails["p50"] <= tails["p95"] <= tails["p99"]