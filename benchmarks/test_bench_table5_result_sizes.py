"""Table V — number of query results per document size.

The bench prints the result-size matrix from the shared experiment and checks
the invariants the paper derives from it: the constant-size queries (Q1, Q3c,
Q9, Q10, Q11) versus the scaling queries (Q2, Q3a, Q4, Q5a/b, Q6).
"""


from repro.bench import reporting
from repro.queries import get_query

from conftest import BENCH_DOCUMENT_SIZES


def test_table5_result_sizes(benchmark, experiment_report, native_engine):
    """Regenerate Table V and verify the constant-vs-scaling split."""
    # Timed representative operation: Q2 (a scaling query) on the largest doc.
    benchmark.pedantic(
        lambda: native_engine.query(get_query("Q2").text), rounds=1, iterations=1
    )

    print("\nTable V — number of query results")
    print(reporting.result_sizes_table(experiment_report))

    sizes = {size: experiment_report.result_sizes(size) for size in BENCH_DOCUMENT_SIZES}
    smallest, largest = BENCH_DOCUMENT_SIZES[0], BENCH_DOCUMENT_SIZES[-1]

    # Constant-result queries (Table V rows that do not scale).
    assert sizes[smallest]["Q1"] == sizes[largest]["Q1"] == 1
    assert sizes[smallest]["Q3c"] == sizes[largest]["Q3c"] == 0
    assert sizes[smallest]["Q9"] == sizes[largest]["Q9"] == 4
    assert sizes[largest]["Q11"] <= 10

    # Scaling queries grow with the document.
    for query_id in ("Q2", "Q3a", "Q5a", "Q5b", "Q6"):
        assert sizes[largest][query_id] > sizes[smallest][query_id], query_id

    # Q5a and Q5b agree (they compute the same result).
    for size in BENCH_DOCUMENT_SIZES:
        assert sizes[size]["Q5a"] == sizes[size]["Q5b"]
