"""Table III — data generation elapsed time versus document size.

The paper generates documents of 10^3 ... 10^9 triples and reports
near-linear scaling with constant memory.  The bench regenerates the sweep at
laptop scale (10^3 ... ~5*10^4) and checks the same near-linear shape.
"""

import time


from conftest import generate_document

#: Scaled-down version of the paper's 10^3...10^9 sweep.
TABLE3_SIZES = (1_000, 5_000, 20_000, 50_000)


def test_generation_time_table3(benchmark):
    """Regenerate Table III and check near-linear scaling."""
    rows = []
    for size in TABLE3_SIZES[:-1]:
        start = time.perf_counter()
        count, _stats = generate_document(size)
        elapsed = time.perf_counter() - start
        rows.append((size, count, elapsed))

    # The timed sample for pytest-benchmark: the largest document.
    def generate_largest():
        return generate_document(TABLE3_SIZES[-1])

    count, _stats = benchmark.pedantic(generate_largest, rounds=1, iterations=1)
    rows.append((TABLE3_SIZES[-1], count, benchmark.stats.stats.mean))

    print("\nTable III — document generation times (paper: 0.08s@10^3 ... 13306s@10^9)")
    print(f"{'#triples':>10}  {'generated':>10}  {'elapsed [s]':>12}")
    for size, generated, elapsed in rows:
        print(f"{size:>10}  {generated:>10}  {elapsed:>12.3f}")

    # Shape check: scaling from 1k to 50k triples is near-linear — the cost
    # ratio stays well below a quadratic blow-up.
    small_size, _count, small_time = rows[0]
    large_size, _count, large_time = rows[-1]
    size_ratio = large_size / small_size
    time_ratio = large_time / max(small_time, 1e-6)
    assert time_ratio < size_ratio * 10, (
        f"generation should scale near-linearly (time ratio {time_ratio:.1f} "
        f"vs size ratio {size_ratio:.1f})"
    )


def test_generation_reaches_requested_size(benchmark):
    """The generator produces at least the requested number of triples."""
    count, stats = benchmark.pedantic(lambda: generate_document(10_000), rounds=1, iterations=1)
    assert count >= 10_000
    assert stats.last_year is not None
