"""Telemetry overhead gate: instrumentation must be ~free.

The observability layer promises that a disabled registry costs one
attribute load and one branch per call site, and that even an *enabled*
registry stays off the critical path (a lock plus an add per record).
This bench runs the same instrumented catalog mix — prepare_cached with a
trace, execute, then the full ``ServerTelemetry.observe_request`` fan-out
— with the global registry disabled and enabled, interleaving rounds so
machine drift hits both sides equally, and gates on min-of-rounds.
"""

import time

import pytest

from repro.obs import (
    QueryTrace,
    ServerTelemetry,
    disable_metrics,
    enable_metrics,
)
from repro.queries import get_query
from repro.sparql import NATIVE_COST, SparqlEngine

#: A small read mix touching the cache-hit path, id-space joins, and ASK.
MIX = ("Q1", "Q3a", "Q12a", "Q2")

#: Interleaved (disabled, enabled) round pairs; the gate compares minima.
ROUNDS = 5

#: Allowed enabled-over-disabled slowdown: 5% relative plus a small
#: absolute slack so sub-millisecond jitter on a quiet mix cannot fail the
#: gate on a busy CI runner.
RELATIVE_SLACK = 1.05
ABSOLUTE_SLACK_SECONDS = 0.020


@pytest.fixture(scope="module")
def obs_engine(medium_graph):
    return SparqlEngine.from_graph(medium_graph, NATIVE_COST)


def run_instrumented_mix(engine, telemetry):
    """One round: every mix query through the fully instrumented path."""
    for query_id in MIX:
        text = get_query(query_id).text
        trace = QueryTrace(queue_wait=0.0)
        prepared = engine.prepare_cached(text, trace=trace)
        rows = 0
        with trace.span("execute"):
            cursor = prepared.run()
            if cursor.form == "ASK":
                bool(cursor)
            else:
                for _row in cursor:
                    rows += 1
        telemetry.observe_request(
            trace, endpoint="/sparql", method="GET", status=200,
            query_text=text, format="json", form=cursor.form, rows=rows,
        )


def test_enabled_registry_overhead_is_bounded(obs_engine):
    telemetry = ServerTelemetry()
    # Warm both sides: prepared-statement cache, sorted runs, histograms.
    run_instrumented_mix(obs_engine, telemetry)
    enable_metrics()
    try:
        run_instrumented_mix(obs_engine, telemetry)
    finally:
        disable_metrics()

    disabled_times, enabled_times = [], []
    try:
        for _round in range(ROUNDS):
            disable_metrics()
            started = time.perf_counter()
            run_instrumented_mix(obs_engine, telemetry)
            disabled_times.append(time.perf_counter() - started)

            enable_metrics()
            started = time.perf_counter()
            run_instrumented_mix(obs_engine, telemetry)
            enabled_times.append(time.perf_counter() - started)
    finally:
        disable_metrics()

    fastest_disabled = min(disabled_times)
    fastest_enabled = min(enabled_times)
    budget = fastest_disabled * RELATIVE_SLACK + ABSOLUTE_SLACK_SECONDS
    assert fastest_enabled <= budget, (
        f"instrumented mix took {fastest_enabled * 1e3:.1f}ms enabled vs "
        f"{fastest_disabled * 1e3:.1f}ms disabled "
        f"(budget {budget * 1e3:.1f}ms)"
    )


def test_disabled_recording_is_branch_cheap(benchmark):
    """pytest-benchmark entry: a disabled counter inc is just a branch."""
    from repro.obs import get_registry

    counter = get_registry().counter(
        "bench_disabled_probe_total", "Overhead probe counter."
    )
    disable_metrics()

    def record_batch():
        for _ in range(1000):
            counter.inc()

    benchmark(record_batch)
