"""Scatter-gather scaling — the partitioned store's payoff.

The workload bench measures multi-client capacity; this bench measures
*single-query* scale-out: the same star-shaped (subject-aligned, hence
union-scattered) scan and join queries run against the same document
partitioned into K=1 and K=4 segments, and the K=4 run uses the persistent
fork-mode segment pool so each segment evaluates on its own core.
Acceptance: at the full 250k-triple document on a machine with >= 4 cores,
the geometric-mean speedup of K=4 over K=1 must reach 1.8x; on smaller
documents or narrower machines the numbers are informational.

``SP2B_SHARDED_TRIPLES`` scales the document for smoke runs (CI uses a
small size); the document itself resolves through the dataset cache, so
repeated runs skip generation entirely.
"""

import os
import time

import pytest

from repro.cache import DatasetCache
from repro.generator import GeneratorConfig
from repro.sparql import NATIVE_COST, SparqlEngine
from repro.sparql.scatter import close_pool, pool_available
from repro.store import PartitionedStore

#: The acceptance document size (the paper's smallest scaling point).
SHARDED_BENCH_TRIPLES = int(os.environ.get("SP2B_SHARDED_TRIPLES", "250000"))

#: Shard counts compared; K=1 is the degenerate single-store baseline.
BASE_SHARDS = 1
SCALED_SHARDS = 4

#: Acceptance bar: geomean speedup of K=4 over K=1 across the queries.
REQUIRED_SPEEDUP = 1.8

#: Cores needed before the speedup assertion is meaningful.
REQUIRED_CORES = 4

#: Timed repetitions per (query, K) point; the minimum is reported.
ROUNDS = 3

PREFIXES = """\
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX bench: <http://localhost/vocabulary/bench/>
PREFIX dc: <http://purl.org/dc/elements/1.1/>
PREFIX dcterms: <http://purl.org/dc/terms/>
PREFIX swrc: <http://swrc.ontoware.org/ontology#>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
"""

#: Both queries are stars on one subject variable, so the planner scatters
#: them as *union*: the whole BGP evaluates independently per segment.
SCALING_QUERIES = {
    # A wide scan: touch every inproceedings, materialize three attributes.
    "scan": PREFIXES + """
SELECT ?doc ?title ?yr WHERE {
  ?doc rdf:type bench:Inproceedings .
  ?doc dc:title ?title .
  ?doc dcterms:issued ?yr .
}
""",
    # The Q2-shaped join: a nine-way star over the same entity set.
    "join": PREFIXES + """
SELECT ?inproc ?author ?booktitle ?title ?proc ?ee ?page ?url ?yr WHERE {
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?author .
  ?inproc bench:booktitle ?booktitle .
  ?inproc dc:title ?title .
  ?inproc dcterms:partOf ?proc .
  ?inproc <http://www.w3.org/2000/01/rdf-schema#seeAlso> ?ee .
  ?inproc swrc:pages ?page .
  ?inproc foaf:homepage ?url .
  ?inproc dcterms:issued ?yr .
}
""",
}


@pytest.fixture(scope="module")
def sharded_stores():
    """The same id-triple set as a K=1 and a K=4 partitioned store."""
    cache = DatasetCache()
    resolved = cache.resolve(
        GeneratorConfig(triple_limit=SHARDED_BENCH_TRIPLES, seed=823645187)
    )
    stores = {
        shards: PartitionedStore.from_store(resolved.store, shards)
        for shards in (BASE_SHARDS, SCALED_SHARDS)
    }
    yield stores
    for store in stores.values():
        close_pool(store)


def _measure(store, query_text):
    """Min wall time (seconds) and row count of draining ``query_text``."""
    engine = SparqlEngine.from_store(store, NATIVE_COST)
    prepared = engine.prepare(query_text)
    rows = sum(1 for _ in prepared.run())  # warm-up: forks the pool at K>1
    best = float("inf")
    for _round in range(ROUNDS):
        start = time.perf_counter()
        count = sum(1 for _ in prepared.run())
        best = min(best, time.perf_counter() - start)
        assert count == rows
    return best, rows


@pytest.mark.skipif(not pool_available(),
                    reason="the segment pool requires the fork start method")
def test_sharded_throughput_scales_with_segments(benchmark, sharded_stores):
    """K=4 union-scattered evaluation beats K=1 by >= 1.8x (geomean)."""
    times = {}
    for name, query_text in SCALING_QUERIES.items():
        for shards, store in sorted(sharded_stores.items()):
            elapsed, rows = _measure(store, query_text)
            times[name, shards] = elapsed
            throughput = rows / elapsed if elapsed else float("inf")
            print(f"\n{name} K={shards}: {rows} rows in {elapsed * 1e3:.1f}ms "
                  f"({throughput:,.0f} rows/s)")

    # The pytest-benchmark entry (informational; the regression gate watches
    # the per-catalog-query benches): the scan query at K=4.
    benchmark.pedantic(
        lambda: _measure(sharded_stores[SCALED_SHARDS],
                         SCALING_QUERIES["scan"]),
        rounds=1, iterations=1,
    )

    speedups = {
        name: times[name, BASE_SHARDS] / max(times[name, SCALED_SHARDS], 1e-9)
        for name in SCALING_QUERIES
    }
    geomean = 1.0
    for value in speedups.values():
        geomean *= value
    geomean **= 1.0 / len(speedups)
    cores = os.cpu_count() or 1
    detail = ", ".join(f"{name} {value:.2f}x"
                       for name, value in sorted(speedups.items()))
    print(f"\nScatter-gather scaling at {SHARDED_BENCH_TRIPLES} triples: "
          f"{detail}; geomean {geomean:.2f}x at K={SCALED_SHARDS} "
          f"({cores} cores)")
    if SHARDED_BENCH_TRIPLES >= 250_000 and cores >= REQUIRED_CORES:
        assert geomean >= REQUIRED_SPEEDUP, (
            f"K={SCALED_SHARDS} only reached {geomean:.2f}x the K=1 "
            f"throughput (required {REQUIRED_SPEEDUP}x on {cores} cores)"
        )
    else:
        print(f"(speedup assertion skipped: needs the 250k-triple document "
              f"on >= {REQUIRED_CORES} cores; this run is informational)")


def test_sharded_results_match_single_store(sharded_stores):
    """Same rows at every K — scatter-gather never changes the answer."""
    results = {}
    for shards, store in sorted(sharded_stores.items()):
        engine = SparqlEngine.from_store(store, NATIVE_COST)
        prepared = engine.prepare(SCALING_QUERIES["scan"])
        results[shards] = sorted(
            tuple(value.n3() for value in row)
            for row in prepared.run().rows()
        )
    assert results[BASE_SHARDS] == results[SCALED_SHARDS]
