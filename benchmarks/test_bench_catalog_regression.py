"""Per-catalog-query timings — the data source for the CI regression gate.

One pytest-benchmark entry per benchmark query, run on the shared medium
document through the cost-planned native engine.  CI runs this suite with
``--benchmark-json`` at smoke scale, uploads the JSON, and
``tools/compare_benchmarks.py`` fails the build when any query's
*normalized* time (relative to the geometric mean of the whole run, so
absolute machine speed cancels out) regresses beyond the threshold against
the committed ``benchmarks/baseline.json``.
"""

import pytest

from repro.queries import ALL_QUERIES, get_query
from repro.sparql import NATIVE_COST, SparqlEngine


@pytest.fixture(scope="module")
def catalog_engine(medium_graph):
    """The cost-planned native engine over the shared benchmark document."""
    return SparqlEngine.from_graph(medium_graph, NATIVE_COST)


def _plan_is_vectorized(tree):
    """True when any BGP step in the plan tree carries a batch kernel."""
    stack = [tree]
    while stack:
        node = stack.pop()
        steps = getattr(getattr(node, "plan", None), "steps", None)
        if steps and any(step.kernel for step in steps):
            return True
        stack.extend(node.children())
    return False


@pytest.mark.parametrize("query_id", [query.identifier for query in ALL_QUERIES])
def test_catalog_query(benchmark, catalog_engine, query_id):
    query_text = get_query(query_id).text
    # Recorded into the results JSON so tools/compare_benchmarks.py can mark
    # which queries ran through the batch kernels in the PR step summary.
    benchmark.extra_info["vectorized"] = _plan_is_vectorized(
        catalog_engine.prepare(query_text).tree
    )
    # One warm-up evaluation, then three timed rounds: enough signal for the
    # shape-based regression comparison without dominating suite runtime
    # (sub-noise-floor queries are additionally exempted by the gate's
    # --min-time so single-scheduler hiccups cannot fail the build).
    result = benchmark.pedantic(
        lambda: catalog_engine.query(query_text),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert result is not None
