"""Acceptance bench — batch kernels versus the tuple path, same planner.

The vectorized executor is a pure physical-layer change below the cost
planner: both engines here share one :class:`~repro.store.IndexedStore` and
one plan shape, and differ only in ``EngineConfig.vectorize``.  The bench
runs the Q1/Q2/Q4/Q6 mix the issue pins down — point lookup (runs tuple
path on both engines below the planner's cost gate, so its ratio is ~1x by
construction), wide OPTIONAL scan, join-heavy DISTINCT chain, closed-world
negation — through prepared queries (parse/plan once), a warm-up run, and
min-of-rounds timing, and asserts a >= 2x *geometric-mean* speedup at the
acceptance size of 25k triples.

``SP2B_VECTORIZED_TRIPLES`` scales the document down for smoke runs (CI
uses 1000); the geomean assertion only applies at the full size, where the
per-query fixed overheads are amortized.  Every timed pair also asserts
multiset-equal results — the kernels must never buy speed with wrong rows.
"""

import math
import os
import time
from dataclasses import replace

import pytest

from repro.generator import DblpGenerator, GeneratorConfig
from repro.queries import get_query
from repro.sparql import NATIVE_COST, SparqlEngine

#: Document size for the comparison; override for CI smoke runs.
VECTORIZED_BENCH_TRIPLES = int(
    os.environ.get("SP2B_VECTORIZED_TRIPLES", "25000")
)

#: The acceptance mix from the issue, with per-query timing rounds: the
#: sub-millisecond queries need more rounds for a stable minimum.
MIX = (("Q1", 25), ("Q2", 9), ("Q4", 5), ("Q6", 7))


@pytest.fixture(scope="module")
def kernel_engines():
    """(vectorized, tuple-path) engines over one shared indexed store."""
    graph = DblpGenerator(
        GeneratorConfig(triple_limit=VECTORIZED_BENCH_TRIPLES, seed=823645187)
    ).graph()
    batch = SparqlEngine.from_graph(graph, NATIVE_COST)
    tuple_path = SparqlEngine(
        replace(NATIVE_COST, name="native-cost-tuple", vectorize=False)
    )
    tuple_path.store = batch.store
    return batch, tuple_path


def _min_round(prepared, rounds):
    """Minimum wall time over ``rounds`` full drains of the prepared plan."""
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        list(prepared.run())
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_vectorized_speedup_on_query_mix(benchmark, kernel_engines):
    """Batch kernels at least double the Q1/Q2/Q4/Q6 geomean at 25k."""
    batch, tuple_path = kernel_engines
    benchmark.pedantic(
        lambda: batch.query(get_query("Q2").text), rounds=1, iterations=1
    )
    print(
        f"\nVectorized vs tuple-path execution, IndexedStore, "
        f"{VECTORIZED_BENCH_TRIPLES} triples (min-of-rounds seconds)"
    )
    ratios = []
    for query_id, rounds in MIX:
        text = get_query(query_id).text
        prepared_batch = batch.prepare(text)
        prepared_tuple = tuple_path.prepare(text)
        # The physical path must never change the result.
        assert (
            prepared_batch.run().all().as_multiset()
            == prepared_tuple.run().all().as_multiset()
        )
        batch_time = _min_round(prepared_batch, rounds)
        tuple_time = _min_round(prepared_tuple, rounds)
        ratio = tuple_time / max(batch_time, 1e-9)
        ratios.append(ratio)
        print(
            f"  {query_id:>3}: tuple={tuple_time:.4f}s batch={batch_time:.4f}s "
            f"speedup={ratio:.2f}x"
        )
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    print(f"  mix geomean: {geomean:.2f}x")
    if VECTORIZED_BENCH_TRIPLES >= 25_000:
        # Acceptance bar from the issue: >= 2x geometric-mean speedup.
        assert geomean >= 2.0


def test_vectorized_plans_cover_the_join_heavy_mix(kernel_engines):
    """The join-heavy mix queries actually plan onto batch kernels.

    Guards the cost gate: if kernel annotation silently stopped firing the
    speedup test would compare the tuple path against itself and the >= 2x
    assertion would fail with a confusing ~1.0x, so this states the real
    invariant directly.
    """
    batch, _tuple_path = kernel_engines
    for query_id, vectorized in (("Q2", True), ("Q4", True), ("Q1", False)):
        report = str(batch.explain(get_query(query_id).text))
        assert ("vectorized=yes" in report) == vectorized, query_id
