"""Ablation — the optimization techniques the paper designs its queries for.

Section V of the paper singles out two optimization families and marks which
queries are amenable to them (Table II rows 4-5): triple-pattern reordering
by selectivity and filter pushing.  The ablation compares the baseline and
optimized configurations of the index-backed engine on the queries that the
paper flags, confirming that the flagged queries actually benefit.
"""

import time

import pytest

from repro.queries import get_query
from repro.sparql import NATIVE_BASELINE, NATIVE_OPTIMIZED, SparqlEngine

#: Queries Table II marks as amenable to filter pushing / reordering.
OPTIMIZABLE = ("Q3a", "Q3b", "Q3c", "Q5a", "Q8")
#: Queries where the optimizations must at least not hurt correctness.
NEUTRAL = ("Q1", "Q9", "Q10", "Q11", "Q12c")


@pytest.fixture(scope="module")
def engines(medium_graph):
    return {
        "baseline": SparqlEngine.from_graph(medium_graph, NATIVE_BASELINE),
        "optimized": SparqlEngine.from_graph(medium_graph, NATIVE_OPTIMIZED),
    }


def _timed(engine, query_id):
    start = time.perf_counter()
    result = engine.query(get_query(query_id).text)
    return time.perf_counter() - start, result


def test_ablation_optimizer_speedup(benchmark, engines):
    """Reordering + filter pushing speed up the Table II flagged queries."""
    benchmark.pedantic(
        lambda: engines["optimized"].query(get_query("Q5a").text), rounds=1, iterations=1
    )

    print("\nAblation — native engine, optimizer off vs on (elapsed seconds)")
    speedups = {}
    for query_id in OPTIMIZABLE:
        baseline_time, baseline_result = _timed(engines["baseline"], query_id)
        optimized_time, optimized_result = _timed(engines["optimized"], query_id)
        speedups[query_id] = baseline_time / max(optimized_time, 1e-6)
        print(f"  {query_id:>4}: off={baseline_time:.3f}s on={optimized_time:.3f}s "
              f"speedup={speedups[query_id]:.1f}x")
        # Optimization must never change the result.
        if baseline_result.form == "SELECT":
            assert baseline_result.as_multiset() == optimized_result.as_multiset()
        else:
            assert bool(baseline_result) == bool(optimized_result)

    # At least one of the flagged queries shows a clear win, and on average
    # the optimizations pay off.
    assert max(speedups.values()) > 1.5
    assert sum(speedups.values()) / len(speedups) > 1.0


def test_ablation_is_correctness_preserving_on_neutral_queries(benchmark, engines):
    """The optimizer changes nothing for queries it cannot improve."""
    benchmark.pedantic(
        lambda: engines["optimized"].query(get_query("Q10").text), rounds=1, iterations=1
    )
    for query_id in NEUTRAL:
        _time_off, baseline_result = _timed(engines["baseline"], query_id)
        _time_on, optimized_result = _timed(engines["optimized"], query_id)
        if baseline_result.form == "SELECT":
            assert baseline_result.as_multiset() == optimized_result.as_multiset()
        else:
            assert bool(baseline_result) == bool(optimized_result)


def test_ablation_planner_families(benchmark, medium_graph):
    """The cost-based planner beats the greedy reorder on the Q4/Q8 mix.

    Third optimizer family (ISSUE 2): ``planner=cost`` plans in id space with
    live statistics — cardinality propagation, star grouping, per-step
    probe/scan choice, and bind joins for small-left joins (Q8's UNION
    anchored to the single Paul Erdoes solution, Q12b's ASK variant).  The
    ablation compares all three families on the join-heavy mix and asserts
    the cost family wins wall-clock overall without changing any result.
    """
    from repro.sparql import EngineConfig, SparqlEngine as Engine

    mix = ("Q4", "Q5a", "Q8", "Q12b")
    engines = {}
    for family in ("none", "greedy", "cost"):
        config = EngineConfig(
            name=f"native-{family}", store_type="indexed",
            reorder_patterns=True, push_filters=True, planner=family,
        )
        engines[family] = Engine.from_graph(medium_graph, config)

    benchmark.pedantic(
        lambda: engines["cost"].query(get_query("Q8").text), rounds=1, iterations=1
    )

    print("\nAblation — planner families on the Q4/Q8-style mix (elapsed seconds)")
    totals = {family: 0.0 for family in engines}
    for query_id in mix:
        times = {}
        results = {}
        for family, engine in engines.items():
            # Warm a first run so allocator effects don't dominate, then take
            # the best of two timed runs (scheduler-noise robustness).
            if query_id == mix[0]:
                engine.query(get_query(query_id).text)
            first, results[family] = _timed(engine, query_id)
            second, _result = _timed(engine, query_id)
            times[family] = min(first, second)
            totals[family] += times[family]
        print(
            f"  {query_id:>5}: none={times['none']:.3f}s "
            f"greedy={times['greedy']:.3f}s cost={times['cost']:.3f}s"
        )
        reference = results["none"]
        for family in ("greedy", "cost"):
            if reference.form == "SELECT":
                assert results[family].as_multiset() == reference.as_multiset()
            else:
                assert bool(results[family]) == bool(reference)
    print(
        f"  mix: none={totals['none']:.3f}s greedy={totals['greedy']:.3f}s "
        f"cost={totals['cost']:.3f}s "
        f"(cost vs greedy speedup={totals['greedy'] / max(totals['cost'], 1e-9):.2f}x)"
    )
    # Acceptance bar: the cost-based plans beat the greedy reorder overall.
    # Only asserted at the default (or larger) document size — at smoke scale
    # the mix totals are a few dozen milliseconds and scheduler noise on a
    # shared CI runner can flip a comparison that holds comfortably at 5k
    # (same policy as the id-space speedup bench).
    if len(medium_graph) >= 5_000:
        assert totals["cost"] < totals["greedy"]


def test_ablation_pattern_reuse(benchmark, medium_graph):
    """Graph-pattern result reuse (Table II row 5) pays off on Q4/Q8-style
    queries for the scan-based engine, without changing results."""
    from repro.sparql import EngineConfig, SCAN_HASH

    no_reuse = EngineConfig(
        name="inmemory-no-reuse", store_type="memory", join_strategy=SCAN_HASH,
        reorder_patterns=True, push_filters=True, reuse_pattern_results=False,
    )
    with_reuse = EngineConfig(
        name="inmemory-reuse", store_type="memory", join_strategy=SCAN_HASH,
        reorder_patterns=True, push_filters=True, reuse_pattern_results=True,
    )
    engine_plain = SparqlEngine.from_graph(medium_graph, no_reuse)
    engine_reuse = SparqlEngine.from_graph(medium_graph, with_reuse)

    benchmark.pedantic(
        lambda: engine_reuse.query(get_query("Q4").text), rounds=1, iterations=1
    )

    print("\nAblation — graph-pattern reuse on the scan-based engine")
    for query_id in ("Q4", "Q8", "Q12b"):
        plain_time, plain_result = _timed(engine_plain, query_id)
        reuse_time, reuse_result = _timed(engine_reuse, query_id)
        print(f"  {query_id:>5}: no-reuse={plain_time:.3f}s reuse={reuse_time:.3f}s")
        if plain_result.form == "SELECT":
            assert plain_result.as_multiset() == reuse_result.as_multiset()
        else:
            assert bool(plain_result) == bool(reuse_result)
