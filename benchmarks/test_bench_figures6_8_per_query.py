"""Figures 6-8 — per-query execution time for every query, engine, and size.

The appendix of the paper plots one panel per (query, engine) pair across the
six document sizes.  The bench prints the full matrix from the shared
experiment report and spot-checks the global relationships that hold across
the published panels.
"""


from repro.bench import reporting
from repro.queries import ALL_QUERIES, get_query

from conftest import BENCH_DOCUMENT_SIZES


def test_figures6_to_8_per_query_matrix(benchmark, experiment_report, native_engine):
    """Print every per-query series and validate cross-engine relationships."""
    benchmark.pedantic(
        lambda: native_engine.query(get_query("Q11").text), rounds=1, iterations=1
    )

    print("\nFigures 6-8 — elapsed seconds per query / engine / document size")
    for query in ALL_QUERIES:
        print(f"\n[{query.identifier}] {query.description}")
        print(reporting.per_query_table(experiment_report, query.identifier))

    largest = BENCH_DOCUMENT_SIZES[-1]

    # Every (engine, query, size) combination has a measurement.
    engines = experiment_report.engine_names()
    for engine in engines:
        for query in ALL_QUERIES:
            for size in BENCH_DOCUMENT_SIZES:
                assert experiment_report.measurements_for(
                    engine=engine, size=size, query_id=query.identifier
                ), (engine, query.identifier, size)

    # Index-friendly lookups (Q1, Q10, Q12c) are faster on the native engine
    # than on the scan-based engine for the largest document.
    for query_id in ("Q1", "Q10", "Q12c"):
        native = experiment_report.measurements_for(
            engine="native-optimized", size=largest, query_id=query_id)[0].elapsed
        memory = experiment_report.measurements_for(
            engine="inmemory-baseline", size=largest, query_id=query_id)[0].elapsed
        assert native < memory, query_id

    # Within one engine, the hard join query Q4 costs more than the point
    # lookup Q1 on every size (the consistent ordering across the panels).
    for engine in engines:
        for size in BENCH_DOCUMENT_SIZES:
            q4 = experiment_report.measurements_for(
                engine=engine, size=size, query_id="Q4")[0].elapsed
            q1 = experiment_report.measurements_for(
                engine=engine, size=size, query_id="Q1")[0].elapsed
            assert q4 > q1


def test_success_and_result_size_summary(benchmark, experiment_report, native_engine):
    """Companion summary: overall success counts per engine."""
    benchmark.pedantic(
        lambda: native_engine.query(get_query("Q3b").text), rounds=1, iterations=1
    )
    print("\nOverall success counts per engine")
    for engine in experiment_report.engine_names():
        rate = experiment_report.success_rate(engine)
        print(f"  {engine:>20}: {rate['counts']}")
        assert rate["total"] == len(ALL_QUERIES) * len(BENCH_DOCUMENT_SIZES)
