"""Prepared-query amortization and time-to-first-row (the serving API).

Two acceptance benches for the prepared/streaming redesign:

* ``test_prepare_once_run_many_beats_parse_every_time`` — executing a
  catalog mix through :meth:`PreparedQuery.run` must be measurably faster
  than per-call ``engine.query()``, because tokenize/parse/translate/
  optimize/cost-plan runs once instead of once per execution.  This is the
  paper's repeated-execution methodology (every query runs many times per
  document) and the dominant shape of production SPARQL logs.
* ``test_limit_query_first_row_is_cheap`` — a LIMIT-style bounded read must
  yield its first row without materializing the full result: streaming
  time-to-first-row has to be a small fraction of full materialization.

Both run under pytest-benchmark so their timings land in the CI benchmark
JSON (informational: the regression gate's normalized comparison covers the
``test_catalog_query`` prefix); the speedup assertions themselves fail the
bench job directly when the serving properties regress.
"""

import time

import pytest

from repro.queries import get_query
from repro.sparql import NATIVE_COST, SparqlEngine

#: Catalog mix dominated by front-end cost (prepare/run time ratios of
#: 4.6x-8.6x on the medium document): Q1 is a selective probe, Q7/Q12b have
#: long query texts with cheap planned evaluations, Q12c short-circuits.
#: These are the template-shaped reads the prepared path is built for.
MIX = ("Q1", "Q7", "Q12b", "Q12c")

#: Executions per measurement round (the "run many" in prepare-once/run-many).
EXECUTIONS = 30

#: Timing rounds; the minimum round is compared (low-noise estimator).
ROUNDS = 5


@pytest.fixture(scope="module")
def serving_engine(medium_graph):
    return SparqlEngine.from_graph(medium_graph, NATIVE_COST)


def _min_round(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_prepare_once_run_many_beats_parse_every_time(benchmark, serving_engine):
    texts = [get_query(identifier).text for identifier in MIX]
    prepared = [serving_engine.prepare(text) for text in texts]

    def parse_every_time():
        for text in texts:
            serving_engine.query(text)

    def run_prepared():
        for query in prepared:
            query.run().all()

    benchmark.pedantic(
        run_prepared, rounds=ROUNDS, iterations=EXECUTIONS, warmup_rounds=1,
    )
    # Both sides of the assertion are measured identically with the explicit
    # min-round loop (the pedantic call above only feeds the benchmark JSON).
    parse_min = _min_round(lambda: [parse_every_time() for _ in range(EXECUTIONS)])
    prepared_min = _min_round(lambda: [run_prepared() for _ in range(EXECUTIONS)])

    speedup = parse_min / prepared_min
    # The mix's prepare cost is several times its evaluation cost, so the
    # amortized path should win by a wide margin; 1.5x keeps CI noise-proof.
    assert speedup > 1.5, (
        f"prepare-once/run-{EXECUTIONS} must amortize parse+plan: "
        f"parse-every-time {parse_min * 1e3:.2f}ms vs prepared "
        f"{prepared_min * 1e3:.2f}ms ({speedup:.2f}x)"
    )


def test_limit_query_first_row_is_cheap(benchmark, serving_engine):
    text = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"
    prepared = serving_engine.prepare(text)

    full_min = _min_round(lambda: prepared.run().all())

    def first_row():
        row = prepared.run(limit=1).first()
        assert row is not None

    benchmark.pedantic(first_row, rounds=ROUNDS, iterations=5, warmup_rounds=1)
    first_min = _min_round(first_row)

    assert first_min * 5 < full_min, (
        f"time-to-first-row must not materialize the full result: "
        f"first row {first_min * 1e6:.0f}µs vs full materialization "
        f"{full_min * 1e6:.0f}µs"
    )
